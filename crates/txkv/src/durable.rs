//! The durable front-end: `txkv` over the [`txlog`] write-ahead log.
//!
//! A [`DurableKvStore`] wraps a [`KvServer`] (either runtime) with a
//! **logical redo log** above the STM commit point:
//!
//! 1. every batch that contains a write is stamped with a **commit sequence
//!    number** (LSN) by reading and incrementing a dedicated heap word
//!    *inside* the batch's transaction ([`KvSession::batch_logged`]) — STM
//!    serialisability makes the LSN order identical to the commit order, on
//!    SwissTM and TLSTM alike;
//! 2. after the STM commit, the batch's *write* operations plus the plan
//!    parameters (shard count, effective group count) are encoded as a
//!    record and handed to the group-commit [`LogWriter`]; the committer
//!    parks until its LSN is durable per the configured [`FsyncPolicy`]
//!    before acknowledging the client. Reads are never logged — a
//!    read-mostly batch's record carries only its few writes.
//!
//! The shared sequence word is a deliberate serialisation point: every
//! logged batch conflicts on it, which is exactly what makes the stamp a
//! total commit order (the classic commit-ticket design). Durable write
//! batches therefore serialise against each other even when their keys are
//! disjoint — part of the durability cost the `kv-*-durable` benchmark
//! scenarios measure against their in-memory twins.
//!
//! Because TLSTM batch tasks and SwissTM sequential plans execute the *same
//! deterministic plan* (PR 4's conformance property), both runtimes log the
//! identical record stream — so recovery is runtime-agnostic: replaying the
//! records sequentially in plan order reproduces the committed state
//! regardless of which runtime (or which task split) produced the log.
//!
//! [`DurableKvStore::snapshot`] writes a consistent shard-by-shard snapshot
//! from inside a single transaction, rotates the log to a fresh segment and
//! prunes everything the snapshot covers; booting a store recovers the
//! newest valid snapshot plus the contiguous record suffix and discards a
//! torn tail (see [`txlog::recovery`] for the invariants).
//!
//! ## Failure model
//!
//! The store degrades instead of dying when the disk misbehaves
//! ([`DurableKvStore::health`]):
//!
//! * a storage failure that survives the WAL's retry/backoff poisons the log
//!   and moves the store to [`Health::Degraded`] — the batch in flight gets
//!   the root-cause [`WalError::Storage`], every later write batch is
//!   refused *before* its in-memory commit with [`WalError::Degraded`], and
//!   reads ([`DurableKvSession::get`]/[`DurableKvSession::scan`]) keep
//!   serving the committed in-memory state;
//! * [`DurableKvStore::try_rearm`] recovers a degraded store without a
//!   restart: it snapshots the in-memory state, opens a fresh log segment at
//!   that LSN and swaps the writer — writes resume if the fault has cleared,
//!   and the snapshot preserves every committed batch (including any that
//!   were committed in memory but never acknowledged);
//! * an injected *crash* ([`WalError::Crashed`]) is [`Health::Failed`]:
//!   deliberately not re-armable, because it simulates the process dying —
//!   only a restart + recovery brings that store back.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use swisstm::SwisstmRuntime;
use tlstm::TlstmRuntime;
use txlog::codec::Cursor;
use txlog::files::{prune_obsolete_with, write_snapshot_with};
use txlog::recovery::recover_with;
use txlog::{
    CrashPoints, FsyncPolicy, LogWriter, RealFs, RetryPolicy, WalError, WalFs, WalOptions,
};
use txmem::{SeqRefRuntime, TxMem, TxRuntime, WordAddr};

use crate::ops::{KvOp, KvReply};
use crate::server::{KvServer, KvServerConfig, KvSession};
use crate::store::KvStore;

/// Version tag of the record and snapshot payload encodings.
const PAYLOAD_VERSION: u32 = 1;

/// Configuration of a [`DurableKvStore`].
#[derive(Debug, Clone)]
pub struct DurableKvConfig {
    /// The wrapped server's configuration (store sizing, batch grouping,
    /// substrate).
    pub server: KvServerConfig,
    /// When log appends are fsynced (and therefore acknowledged).
    pub fsync: FsyncPolicy,
    /// Crash-injection registry for the WAL writer;
    /// [`CrashPoints::disabled`] outside crash tests.
    pub crash_points: CrashPoints,
    /// The storage layer the log goes through: [`RealFs`] in production, a
    /// [`txlog::FaultFs`] under fault injection.
    pub fs: Arc<dyn WalFs>,
    /// Retry/backoff for transient WAL append errors.
    pub retry: RetryPolicy,
}

impl Default for DurableKvConfig {
    fn default() -> Self {
        DurableKvConfig {
            server: KvServerConfig::default(),
            fsync: FsyncPolicy::default(),
            crash_points: CrashPoints::default(),
            fs: RealFs::shared(),
            retry: RetryPolicy::default(),
        }
    }
}

/// The store's serving state with respect to its write-ahead log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Health {
    /// The log accepts writes; batches are durable per the fsync policy.
    Healthy,
    /// The log was poisoned by the carried storage failure: reads serve the
    /// committed in-memory state, writes fail fast, and
    /// [`DurableKvStore::try_rearm`] can restore service in place.
    Degraded(WalError),
    /// The WAL writer crashed (injected crash point). Not re-armable — only
    /// a restart + recovery brings the store back.
    Failed,
}

/// What booting a [`DurableKvStore`] recovered from its log directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// LSN of the snapshot the boot loaded, if one was valid.
    pub snapshot_lsn: Option<u64>,
    /// Redo records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// The LSN the next committed batch will carry.
    pub next_lsn: u64,
    /// Diagnostics from the log scan (torn tails discarded, invalid
    /// snapshots skipped, ...).
    pub diagnostics: Vec<String>,
}

/// The swappable WAL slot shared by a store and its sessions: sessions take
/// the read side per batch, [`DurableKvStore::try_rearm`] takes the write
/// side to install a fresh writer after a storage failure.
#[derive(Debug)]
struct WalCell {
    writer: RwLock<LogWriter>,
    /// Last health code published to txobs (`trace::health` values), so the
    /// gauge updates and transition trace events fire once per transition,
    /// not once per observation.
    observed_health: AtomicU64,
}

impl WalCell {
    /// Lock poisoning mirrors the WAL's own policy: a thread that panicked
    /// holding the writer slot may have left a half-swapped writer, and
    /// serving from it could acknowledge non-durable records — propagate the
    /// panic loudly instead.
    fn read(&self) -> RwLockReadGuard<'_, LogWriter> {
        self.writer
            .read()
            .expect("WAL slot poisoned: a thread panicked mid-swap")
    }

    fn write(&self) -> RwLockWriteGuard<'_, LogWriter> {
        self.writer
            .write()
            .expect("WAL slot poisoned: a thread panicked mid-swap")
    }

    /// Publishes the store's health to txobs: the gauge always tracks the
    /// latest observation; a trace event fires only when the code changes.
    fn observe_health(&self, code: u64) {
        let previous = self.observed_health.swap(code, Ordering::Relaxed);
        txobs::metrics::kv().health.set(code);
        if previous != code {
            txobs::trace::trace(txobs::EventKind::KvHealth, code);
        }
    }
}

/// The txobs health code of a WAL failure observation.
fn health_code(failure: Option<&WalError>) -> u64 {
    match failure {
        None => txobs::trace::health::HEALTHY,
        Some(WalError::Crashed) => txobs::trace::health::FAILED,
        Some(_) => txobs::trace::health::DEGRADED,
    }
}

/// A crash-safe [`KvServer`]: acknowledged writes survive process death.
#[derive(Debug)]
pub struct DurableKvStore<R: TxRuntime> {
    server: KvServer<R>,
    seq: WordAddr,
    wal: Arc<WalCell>,
    /// The boot options sans `start_lsn` — [`Self::try_rearm`] reuses them
    /// to open the replacement writer.
    options: WalOptions,
    dir: PathBuf,
    recovery: RecoveryReport,
}

impl DurableKvStore<SwisstmRuntime> {
    /// Boots a durable store on the SwissTM runtime, recovering whatever the
    /// log directory holds (an empty/missing directory boots a fresh store).
    ///
    /// # Errors
    ///
    /// Propagates file-system failures and undecodable (version-mismatched)
    /// log content. Torn/corrupt tails are *not* errors — they are discarded
    /// per the recovery invariants.
    pub fn swisstm(dir: &Path, config: &DurableKvConfig) -> io::Result<Self> {
        Self::boot(dir, config)
    }
}

impl DurableKvStore<TlstmRuntime> {
    /// Boots a durable store on the TLSTM runtime (batches split into
    /// speculative tasks; the log stream is identical to SwissTM's).
    ///
    /// # Errors
    ///
    /// See [`DurableKvStore::swisstm`].
    pub fn tlstm(dir: &Path, config: &DurableKvConfig) -> io::Result<Self> {
        Self::boot(dir, config)
    }
}

impl DurableKvStore<SeqRefRuntime> {
    /// Boots a durable store on the sequential global-lock reference runtime
    /// (the log stream is identical to the transactional runtimes').
    ///
    /// # Errors
    ///
    /// See [`DurableKvStore::swisstm`].
    pub fn seqref(dir: &Path, config: &DurableKvConfig) -> io::Result<Self> {
        Self::boot(dir, config)
    }
}

impl<R: TxRuntime> DurableKvStore<R> {
    /// Boots a durable store on runtime `R`, recovering whatever the log
    /// directory holds. Recovery replays snapshot and records through
    /// [`DirectMem`](txmem::DirectMem) and is therefore runtime-agnostic.
    ///
    /// # Errors
    ///
    /// See [`DurableKvStore::swisstm`].
    pub fn boot(dir: &Path, config: &DurableKvConfig) -> io::Result<Self> {
        let recovered = recover_with(config.fs.as_ref(), dir)?;
        let server = KvServer::<R>::new(&config.server);
        let store = server.store();
        let mut mem = server.direct();
        let seq = mem
            .alloc(1)
            .map_err(|_| io::Error::new(io::ErrorKind::OutOfMemory, "sequence word"))?;

        let mut snapshot_lsn = None;
        if let Some((lsn, payload)) = &recovered.snapshot {
            snapshot_lsn = Some(*lsn);
            let entries = decode_snapshot(payload)
                .ok_or_else(|| invalid_data(format!("undecodable snapshot at LSN {lsn}")))?;
            for (key, value) in entries {
                store
                    .put(&mut mem, key, &value)
                    .map_err(|_| invalid_data("snapshot replay aborted (heap exhausted?)"))?;
            }
        }
        for (lsn, payload) in &recovered.records {
            let record = decode_record(payload)
                .ok_or_else(|| invalid_data(format!("undecodable record at LSN {lsn}")))?;
            for op in record.plan_order() {
                store
                    .apply(&mut mem, op)
                    .map_err(|_| invalid_data("record replay aborted (heap exhausted?)"))?;
            }
        }
        mem.write(seq, recovered.next_lsn)
            .expect("direct writes cannot abort");

        let options = WalOptions {
            start_lsn: recovered.next_lsn,
            fsync: config.fsync,
            crash_points: config.crash_points.clone(),
            fs: Arc::clone(&config.fs),
            retry: config.retry,
            ..WalOptions::default()
        };
        let writer = LogWriter::open(dir, &options)?;
        let wal = Arc::new(WalCell {
            writer: RwLock::new(writer),
            observed_health: AtomicU64::new(0),
        });
        wal.observe_health(txobs::trace::health::HEALTHY);
        Ok(DurableKvStore {
            server,
            seq,
            wal,
            options,
            dir: dir.to_path_buf(),
            recovery: RecoveryReport {
                snapshot_lsn,
                replayed_records: recovered.records.len() as u64,
                next_lsn: recovered.next_lsn,
                diagnostics: recovered.diagnostics,
            },
        })
    }

    /// The wrapped server (store handle, stats, direct access for tests).
    pub fn server(&self) -> &KvServer<R> {
        &self.server
    }

    /// The store handle.
    pub fn store(&self) -> KvStore {
        self.server.store()
    }

    /// The log directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// What booting this store recovered.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// All batches with LSN below this are durable and were acknowledged.
    pub fn durable_lsn(&self) -> u64 {
        self.wal.read().durable_lsn()
    }

    /// `true` once the WAL writer has died (injected crash or I/O error);
    /// every subsequent write batch fails with a typed [`WalError`]
    /// ([`WalError::Crashed`] after a crash, [`WalError::Degraded`] after a
    /// storage failure) while reads keep serving.
    pub fn is_dead(&self) -> bool {
        self.wal.read().is_dead()
    }

    /// The store's serving state: [`Health::Healthy`] while the log accepts
    /// writes, [`Health::Degraded`] (with the root-cause storage failure)
    /// once the log is poisoned, [`Health::Failed`] after an injected crash.
    pub fn health(&self) -> Health {
        let failure = self.wal.read().failure();
        self.wal.observe_health(health_code(failure.as_ref()));
        match failure {
            None => Health::Healthy,
            Some(WalError::Crashed) => Health::Failed,
            Some(cause) => Health::Degraded(cause),
        }
    }

    /// Attempts to restore write service after a storage failure, without a
    /// restart: snapshots the committed in-memory state, opens a fresh log
    /// segment at the snapshot's LSN and swaps it in for the poisoned
    /// writer. Returns `Ok(true)` when a new writer was armed, `Ok(false)`
    /// when the store was healthy (nothing to do).
    ///
    /// The snapshot covers *every* committed batch — including any that were
    /// committed in memory but never acknowledged because the log was
    /// already poisoned — so a batch whose ticket reported a storage error
    /// may become durable after a successful re-arm. Acknowledged batches
    /// are always preserved.
    ///
    /// # Errors
    ///
    /// Fails with `Other` on a [`Health::Failed`] (crashed) store, and
    /// propagates storage errors when the fault has not cleared (snapshot or
    /// segment creation still failing) — the store then stays degraded and
    /// the call can be retried.
    pub fn try_rearm(&self) -> io::Result<bool> {
        // Hold the write side for the whole swap: sessions cannot fetch a
        // handle to a half-installed writer, and a racing batch that
        // committed in memory just before the swap re-checks the *new*
        // writer afterwards (its LSN is below the snapshot's, so the append
        // comes back pre-acknowledged — correct, the snapshot covers it).
        let mut writer = self.wal.write();
        let Some(failure) = writer.failure() else {
            return Ok(false);
        };
        if failure == WalError::Crashed {
            return Err(io::Error::other(
                "the WAL writer crashed; only a restart + recovery can bring the store back",
            ));
        }
        let (lsn, payload) = self.state_snapshot();
        write_snapshot_with(self.options.fs.as_ref(), &self.dir, lsn, &payload)?;
        let fresh = LogWriter::open(
            &self.dir,
            &WalOptions {
                start_lsn: lsn,
                ..self.options.clone()
            },
        )?;
        *writer = fresh;
        drop(writer);
        txobs::metrics::kv().rearms.inc();
        txobs::trace::trace(txobs::EventKind::KvRearm, lsn);
        self.wal.observe_health(txobs::trace::health::HEALTHY);
        // Best effort: the snapshot already covers the poisoned segments, so
        // a failed prune only costs disk space, not correctness.
        let _ = prune_obsolete_with(self.options.fs.as_ref(), &self.dir, lsn);
        Ok(true)
    }

    /// Loads `entries` non-transactionally — and **without logging** — for
    /// pre-measurement population. Call [`Self::snapshot`] afterwards to make
    /// the populated base durable; otherwise recovery starts from an empty
    /// store plus the logged batches.
    pub fn populate(&self, entries: impl IntoIterator<Item = (u64, Vec<u64>)>) {
        self.server.populate(entries);
    }

    /// Opens a durable session. Each client thread needs its own. Sessions
    /// share the store's WAL slot, so they follow a
    /// [`DurableKvStore::try_rearm`] onto the replacement writer
    /// automatically.
    pub fn session(&self) -> DurableKvSession<R> {
        DurableKvSession {
            inner: self.server.session(),
            seq: self.seq,
            wal: Arc::clone(&self.wal),
            shards: self.server.store().shards(),
            groups: self.server.batch_tasks(),
        }
    }

    /// A consistent `(lsn, payload)` snapshot of the committed in-memory
    /// state, taken inside one transaction (shared by [`Self::snapshot`] and
    /// [`Self::try_rearm`]).
    fn state_snapshot(&self) -> (u64, Vec<u8>) {
        let store = self.server.store();
        let seq = self.seq;
        let n_shards = store.shards();
        let mut session = self.server.session();
        session.transact(move |mut mem| {
            let lsn = mem.read(seq)?;
            let mut payload = Vec::new();
            payload.extend_from_slice(&PAYLOAD_VERSION.to_le_bytes());
            payload.extend_from_slice(&n_shards.to_le_bytes());
            for shard in 0..n_shards {
                let entries = store.dump_shard(&mut mem, shard)?;
                payload.extend_from_slice(&shard.to_le_bytes());
                payload.extend_from_slice(&(entries.len() as u64).to_le_bytes());
                for (key, value) in entries {
                    payload.extend_from_slice(&key.to_le_bytes());
                    payload.extend_from_slice(&(value.len() as u32).to_le_bytes());
                    for word in value {
                        payload.extend_from_slice(&word.to_le_bytes());
                    }
                }
            }
            Ok((lsn, payload))
        })
    }

    /// Takes a consistent shard-by-shard snapshot inside one transaction,
    /// writes it (atomically) to the log directory, rotates the log to a
    /// fresh segment and prunes every snapshot/segment the new snapshot
    /// covers. Returns the snapshot's LSN: every record below it is covered.
    ///
    /// Concurrent sessions keep committing while the snapshot runs; their
    /// batches either serialise before the snapshot transaction (covered) or
    /// after it (stay in the log).
    ///
    /// # Errors
    ///
    /// Fails up front with a typed error — the [`std::io::ErrorKind`] of the
    /// root-cause storage failure, or `Other` after a crash — when the WAL
    /// writer is dead, *before* any snapshot file is created (no `.tmp`
    /// residue, no partial snapshot). Otherwise propagates file-system
    /// failures; [`txlog::write_snapshot`] itself is all-or-nothing.
    pub fn snapshot(&self) -> io::Result<u64> {
        if let Some(failure) = self.wal.read().failure() {
            return Err(wal_io_error(&failure));
        }
        let (lsn, payload) = self.state_snapshot();
        write_snapshot_with(self.options.fs.as_ref(), &self.dir, lsn, &payload)?;
        self.wal.read().rotate().map_err(|e| wal_io_error(&e))?;
        prune_obsolete_with(self.options.fs.as_ref(), &self.dir, lsn)?;
        Ok(lsn)
    }
}

/// Maps a [`WalError`] onto the `io::Error` surface of the snapshot/boot
/// paths, preserving the root cause's [`std::io::ErrorKind`].
fn wal_io_error(error: &WalError) -> io::Error {
    match error {
        WalError::Storage { kind, .. } => io::Error::new(*kind, error.to_string()),
        WalError::Crashed | WalError::Degraded => io::Error::other(error.to_string()),
    }
}

/// A per-client durable session: batches are atomic *and* — once the call
/// returns `Ok` — durable per the store's fsync policy.
#[derive(Debug)]
pub struct DurableKvSession<R: TxRuntime> {
    inner: KvSession<R>,
    seq: WordAddr,
    wal: Arc<WalCell>,
    shards: u64,
    groups: usize,
}

/// `true` if the operation can change store state (and must be logged).
fn op_writes(op: &KvOp) -> bool {
    matches!(
        op,
        KvOp::Put { .. } | KvOp::Delete { .. } | KvOp::Cas { .. }
    )
}

impl<R: TxRuntime> DurableKvSession<R> {
    /// Executes `ops` as one atomic transaction; if the batch contains any
    /// write, parks until its redo record is durable before returning.
    /// Read-only batches skip the log entirely.
    ///
    /// # Errors
    ///
    /// * [`WalError::Crashed`] — the WAL writer died before the record was
    ///   acknowledged. The in-memory commit stands, but the write is **not**
    ///   acknowledged as durable: after a restart, recovery may or may not
    ///   include it (it is beyond the acknowledged prefix).
    /// * [`WalError::Storage`] — this batch's record hit a storage failure
    ///   that survived the WAL's retries. Same contract as `Crashed`: the
    ///   in-memory commit stands, durability is not acknowledged (a later
    ///   [`DurableKvStore::try_rearm`] snapshots it in).
    /// * [`WalError::Degraded`] — the log was already poisoned when this
    ///   batch arrived; it was refused **before** the in-memory commit, so
    ///   the store state is untouched. Reads keep working throughout.
    pub fn batch(&mut self, ops: Vec<KvOp>) -> Result<Vec<KvReply>, WalError> {
        if !ops.iter().any(op_writes) {
            return Ok(self.inner.batch(ops));
        }
        // Fail fast while the log is dead: refusing *before* the in-memory
        // commit keeps degraded-mode write attempts free of side effects
        // (and off the sequence word).
        //
        // The read guard is held from the pre-check through the staging of
        // the append so the commit and its record land on the *same* writer:
        // `try_rearm` (which takes the write side) can then only snapshot
        // between whole commit+append pairs, never between a commit and its
        // append — a gap that would leave the replacement writer waiting
        // forever for an LSN that went to the poisoned one. Only the
        // durability wait happens outside the guard.
        let (replies, ticket) = {
            let writer = self.wal.read();
            if let Some(failure) = writer.failure() {
                self.wal.observe_health(health_code(Some(&failure)));
                return Err(match failure {
                    WalError::Crashed => WalError::Crashed,
                    WalError::Storage { .. } | WalError::Degraded => WalError::Degraded,
                });
            }
            // Encode before execution (the ops move into the transaction);
            // the LSN lives in the frame header, not the payload.
            let payload = encode_record(self.shards, self.groups, &ops);
            let (replies, lsn) = self.inner.batch_logged(ops, self.seq);
            (replies, writer.append(lsn, payload)?)
        };
        ticket.wait()?;
        Ok(replies)
    }

    /// Executes several independently-submitted sub-batches as **one**
    /// atomic, durable transaction and splits the replies back per
    /// sub-batch: the coalesced batch carries one commit sequence number,
    /// one redo record and one group-commit ticket, so N client requests
    /// amortise a single STM commit *and* a single fsync acknowledgement —
    /// the seam the network front-end's server-side coalescing builds on.
    /// If no sub-batch contains a write, the log is skipped entirely.
    ///
    /// # Errors
    ///
    /// See [`Self::batch`]; the durability contract applies to the coalesced
    /// batch as a whole (all sub-batches ack together or none do).
    pub fn batch_with_replies(
        &mut self,
        requests: Vec<Vec<KvOp>>,
    ) -> Result<Vec<Vec<KvReply>>, WalError> {
        let lens: Vec<usize> = requests.iter().map(Vec::len).collect();
        let replies = self.batch(requests.into_iter().flatten().collect())?;
        Ok(crate::ops::split_replies(&lens, replies))
    }

    /// Reads `key` (never logged).
    pub fn get(&mut self, key: u64) -> Option<Vec<u64>> {
        self.inner.get(key)
    }

    /// Ordered scan (never logged).
    pub fn scan(&mut self, lo: u64, hi: u64, limit: u64) -> Vec<(u64, u64)> {
        self.inner.scan(lo, hi, limit)
    }

    /// Durable single-key write. Returns `true` on fresh insert.
    ///
    /// # Errors
    ///
    /// See [`Self::batch`].
    pub fn put(&mut self, key: u64, value: Vec<u64>) -> Result<bool, WalError> {
        match self.batch(vec![KvOp::Put { key, value }])?.pop() {
            Some(KvReply::Inserted(fresh)) => Ok(fresh),
            other => unreachable!("put produced {other:?}"),
        }
    }

    /// Durable single-key delete. Returns `true` if the key existed.
    ///
    /// # Errors
    ///
    /// See [`Self::batch`].
    pub fn delete(&mut self, key: u64) -> Result<bool, WalError> {
        match self.batch(vec![KvOp::Delete { key }])?.pop() {
            Some(KvReply::Removed(existed)) => Ok(existed),
            other => unreachable!("delete produced {other:?}"),
        }
    }

    /// Durable compare-and-swap.
    ///
    /// # Errors
    ///
    /// See [`Self::batch`].
    pub fn cas(&mut self, key: u64, expected: Vec<u64>, new: Vec<u64>) -> Result<bool, WalError> {
        match self.batch(vec![KvOp::Cas { key, expected, new }])?.pop() {
            Some(KvReply::Swapped(swapped)) => Ok(swapped),
            other => unreachable!("cas produced {other:?}"),
        }
    }
}

fn invalid_data(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

// --- record / snapshot payload codecs ---------------------------------------

/// A decoded redo record: the **write** operations of one committed batch,
/// in submission order, plus the plan parameters needed to replay them in
/// the exact order the original execution applied them.
///
/// Reads (`Get`/`Scan`) have no state effect and are not logged — a
/// read-mostly batch's record carries only its few writes. Because the
/// original plan assigns an operation to a shard-group by its own key alone
/// (`shard_of(key, shards) % groups`) and preserves submission order inside
/// each group, replaying the writes group-by-group ([`Self::plan_order`])
/// reproduces the committed write sequence exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRecord {
    /// Shard count the original plan grouped by (kept in the record so
    /// replay reproduces the plan even if the store is re-configured).
    pub shards: u64,
    /// *Effective* shard-group count of the original plan (already clamped
    /// by the full batch length, reads included).
    pub groups: usize,
    /// The write operations, in submission order.
    pub ops: Vec<KvOp>,
}

impl BatchRecord {
    /// The record's writes in the original plan's application order:
    /// group-by-group, submission order within each group.
    pub fn plan_order(&self) -> impl Iterator<Item = &KvOp> {
        let shards = self.shards.max(1);
        let groups = self.groups.max(1) as u64;
        (0..groups).flat_map(move |group| {
            self.ops
                .iter()
                .filter(move |op| crate::ops::shard_of(op.planning_key(), shards) % groups == group)
        })
    }
}

const OP_PUT: u8 = 1;
const OP_DELETE: u8 = 2;
const OP_CAS: u8 = 3;

fn put_words(out: &mut Vec<u8>, words: &[u64]) {
    out.extend_from_slice(&(words.len() as u32).to_le_bytes());
    for &word in words {
        out.extend_from_slice(&word.to_le_bytes());
    }
}

/// Encodes one batch as a redo-record payload (the frame adds LSN and CRC).
/// `ops` is the **full** batch — the effective group count is derived from
/// its length before the reads are dropped from the encoding.
pub fn encode_record(shards: u64, groups: usize, ops: &[KvOp]) -> Vec<u8> {
    // Mirror `plan_batch`'s clamp so replay partitions exactly like the
    // original execution did.
    let effective_groups = groups.max(1).min(ops.len().max(1));
    let writes = ops.iter().filter(|op| op_writes(op));
    let mut out = Vec::with_capacity(20 + ops.len() * 16);
    out.extend_from_slice(&PAYLOAD_VERSION.to_le_bytes());
    out.extend_from_slice(&shards.to_le_bytes());
    out.extend_from_slice(&(effective_groups as u32).to_le_bytes());
    out.extend_from_slice(&(writes.clone().count() as u32).to_le_bytes());
    for op in writes {
        match op {
            KvOp::Put { key, value } => {
                out.push(OP_PUT);
                out.extend_from_slice(&key.to_le_bytes());
                put_words(&mut out, value);
            }
            KvOp::Delete { key } => {
                out.push(OP_DELETE);
                out.extend_from_slice(&key.to_le_bytes());
            }
            KvOp::Cas { key, expected, new } => {
                out.push(OP_CAS);
                out.extend_from_slice(&key.to_le_bytes());
                put_words(&mut out, expected);
                put_words(&mut out, new);
            }
            KvOp::Get { .. } | KvOp::Scan { .. } => unreachable!("reads are filtered out"),
        }
    }
    out
}

/// Decodes a redo-record payload; `None` on any structural violation.
pub fn decode_record(payload: &[u8]) -> Option<BatchRecord> {
    let mut cur = Cursor::new(payload);
    if cur.u32()? != PAYLOAD_VERSION {
        return None;
    }
    let shards = cur.u64()?;
    let groups = cur.u32()? as usize;
    let n_ops = cur.u32()? as usize;
    if n_ops > payload.len() {
        return None; // cheaper than letting a corrupt count allocate wildly
    }
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let op = match cur.u8()? {
            OP_PUT => KvOp::Put {
                key: cur.u64()?,
                value: cur.words()?,
            },
            OP_DELETE => KvOp::Delete { key: cur.u64()? },
            OP_CAS => KvOp::Cas {
                key: cur.u64()?,
                expected: cur.words()?,
                new: cur.words()?,
            },
            _ => return None,
        };
        ops.push(op);
    }
    cur.done().then_some(BatchRecord {
        shards,
        groups,
        ops,
    })
}

/// Decodes a snapshot payload into its `(key, value)` entries (shard
/// sections flattened, in shard order); `None` on any structural violation.
pub fn decode_snapshot(payload: &[u8]) -> Option<Vec<(u64, Vec<u64>)>> {
    let mut cur = Cursor::new(payload);
    if cur.u32()? != PAYLOAD_VERSION {
        return None;
    }
    let n_shards = cur.u64()?;
    let mut entries = Vec::new();
    for expected_shard in 0..n_shards {
        if cur.u64()? != expected_shard {
            return None;
        }
        let count = cur.u64()? as usize;
        if count > payload.len() {
            return None;
        }
        for _ in 0..count {
            let key = cur.u64()?;
            let value = cur.words()?;
            entries.push((key, value));
        }
    }
    cur.done().then_some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_codec_keeps_writes_and_drops_reads() {
        let ops = vec![
            KvOp::Get { key: 7 },
            KvOp::Put {
                key: 9,
                value: vec![1, 2, 3],
            },
            KvOp::Delete { key: 11 },
            KvOp::Cas {
                key: 13,
                expected: vec![],
                new: vec![u64::MAX],
            },
            KvOp::Scan {
                lo: 0,
                hi: 100,
                limit: 8,
            },
        ];
        let payload = encode_record(16, 4, &ops);
        assert_eq!(
            decode_record(&payload),
            Some(BatchRecord {
                shards: 16,
                groups: 4,
                ops: vec![ops[1].clone(), ops[2].clone(), ops[3].clone()],
            })
        );
        // A read-mostly batch's record is dominated by its single write, not
        // by the 15 reads around it.
        let mut read_heavy: Vec<KvOp> = (0..15).map(|k| KvOp::Get { key: k }).collect();
        read_heavy.push(KvOp::Put {
            key: 99,
            value: vec![1],
        });
        let payload = encode_record(16, 4, &read_heavy);
        let record = decode_record(&payload).unwrap();
        assert_eq!(record.ops.len(), 1);
        assert!(payload.len() < 64, "reads must not inflate the record");
    }

    #[test]
    fn plan_order_matches_the_original_plan_restricted_to_writes() {
        // Mixed batch: the plan-order of the record's writes must equal the
        // full plan_batch order of the same batch with reads skipped.
        let ops: Vec<KvOp> = (0..12u64)
            .map(|i| {
                if i % 3 == 0 {
                    KvOp::Get { key: i * 7 }
                } else {
                    KvOp::Put {
                        key: i * 7,
                        value: vec![i],
                    }
                }
            })
            .collect();
        let (shards, groups) = (16u64, 4usize);
        let payload = encode_record(shards, groups, &ops);
        let record = decode_record(&payload).unwrap();
        let replayed: Vec<KvOp> = record.plan_order().cloned().collect();
        let full_plan: Vec<KvOp> = crate::ops::plan_batch(&ops, shards, groups)
            .into_iter()
            .flatten()
            .map(|index| ops[index].clone())
            .filter(|op| matches!(op, KvOp::Put { .. }))
            .collect();
        assert_eq!(replayed, full_plan);
    }

    #[test]
    fn effective_group_count_survives_read_stripping() {
        // A 1-write batch of 8 ops planned into 4 groups must replay with 4
        // groups, not min(4, 1) — the clamp uses the full batch length.
        let mut ops: Vec<KvOp> = (0..7).map(|k| KvOp::Get { key: k }).collect();
        ops.push(KvOp::Put {
            key: 3,
            value: vec![9],
        });
        let record = decode_record(&encode_record(8, 4, &ops)).unwrap();
        assert_eq!(record.groups, 4);
        // And a 2-op batch clamps to 2 groups exactly like plan_batch does.
        let ops = vec![
            KvOp::Put {
                key: 1,
                value: vec![1],
            },
            KvOp::Put {
                key: 2,
                value: vec![2],
            },
        ];
        let record = decode_record(&encode_record(8, 4, &ops)).unwrap();
        assert_eq!(record.groups, 2);
    }

    #[test]
    fn record_decoder_rejects_corruption_without_panicking() {
        let ops = vec![
            KvOp::Put {
                key: 1,
                value: vec![10, 20],
            },
            KvOp::Cas {
                key: 2,
                expected: vec![5],
                new: vec![6, 7],
            },
        ];
        let good = encode_record(8, 2, &ops);
        assert!(decode_record(&good).is_some());
        // Truncations at every length.
        for cut in 0..good.len() {
            let _ = decode_record(&good[..cut]); // must not panic
        }
        // Trailing garbage is rejected (a CRC-valid frame can never carry
        // it, but the decoder must not silently accept it either).
        let mut padded = good.clone();
        padded.push(0);
        assert_eq!(decode_record(&padded), None);
        // A wrong version is rejected.
        let mut wrong = good;
        wrong[0] ^= 0xFF;
        assert_eq!(decode_record(&wrong), None);
    }

    #[test]
    fn snapshot_codec_round_trips() {
        // Hand-build a two-shard payload the way `snapshot()` does.
        let mut payload = Vec::new();
        payload.extend_from_slice(&PAYLOAD_VERSION.to_le_bytes());
        payload.extend_from_slice(&2u64.to_le_bytes());
        let shard_entries: [&[(u64, &[u64])]; 2] =
            [&[(4, &[40, 41][..])], &[(1, &[10][..]), (3, &[][..])]];
        for (shard, entries) in shard_entries.iter().enumerate() {
            payload.extend_from_slice(&(shard as u64).to_le_bytes());
            payload.extend_from_slice(&(entries.len() as u64).to_le_bytes());
            for &(key, value) in *entries {
                payload.extend_from_slice(&key.to_le_bytes());
                payload.extend_from_slice(&(value.len() as u32).to_le_bytes());
                for &word in value {
                    payload.extend_from_slice(&word.to_le_bytes());
                }
            }
        }
        assert_eq!(
            decode_snapshot(&payload),
            Some(vec![(4, vec![40, 41]), (1, vec![10]), (3, vec![]),])
        );
        for cut in 0..payload.len() {
            let _ = decode_snapshot(&payload[..cut]); // must not panic
        }
    }
}
