//! The in-process serving front-end.
//!
//! A [`KvServer`] owns one [`TxRuntime`] and one [`KvStore`]; each client
//! obtains a [`KvSession`] (one per client thread) and submits single
//! operations or multi-operation batches. A batch executes as **one atomic
//! transaction** regardless of how many shards it touches.
//!
//! The server is generic over the runtime: every non-empty shard-group of a
//! batch plan (see [`crate::ops::plan_batch`]) becomes one task body of a
//! [`TxSession::run_tasks`] group. Under TLSTM those bodies run as
//! speculative tasks that commit in plan order — the paper's
//! TLS-inside-transactions model applied to the canonical middleware
//! long-transaction, a multi-key read-modify-write batch. Sequential
//! runtimes (SwissTM, `seqref`) execute the identical plan in order inside
//! one transaction, which is what makes the runtimes directly comparable
//! (and conformance-testable against [`crate::RefStore::batch`]).
//!
//! [`KvServer::swisstm`], [`KvServer::tlstm`] and [`KvServer::seqref`] are
//! thin aliases of the generic [`KvServer::new`] for the registered runtimes.

use swisstm::SwisstmRuntime;
use tlstm::TlstmRuntime;
use txmem::{
    run_boxed_tasks, Abort, BoxedTaskBody, DirectMem, SeqRefRuntime, StatsSnapshot, TxConfig,
    TxHeap, TxMem, TxRuntime, TxSession, WordAddr,
};

use std::sync::Arc;

use crate::ops::{plan_batch, KvOp, KvReply};
use crate::store::{KvStore, KvStoreParams};

/// Configuration of a [`KvServer`].
#[derive(Debug, Clone)]
pub struct KvServerConfig {
    /// Store sizing (shards, expected keys).
    pub store: KvStoreParams,
    /// Shard-groups a batch is planned into. Under a speculative runtime
    /// each non-empty group becomes one task; sequential runtimes execute
    /// the plan in order. All runtimes must use the same value to produce
    /// identical batch semantics.
    pub batch_tasks: usize,
    /// Substrate configuration (heap size, lock table, spin limits).
    pub tx: TxConfig,
}

impl Default for KvServerConfig {
    fn default() -> Self {
        KvServerConfig {
            store: KvStoreParams::default(),
            batch_tasks: 4,
            tx: TxConfig::default(),
        }
    }
}

impl KvServerConfig {
    fn substrate(&self) -> TxConfig {
        TxConfig {
            spec_depth: self.tx.spec_depth.max(self.batch_tasks.max(1)),
            ..self.tx.clone()
        }
    }
}

/// A transactional key-value server: one runtime, one store, many sessions.
#[derive(Debug)]
pub struct KvServer<R: TxRuntime> {
    runtime: Arc<R>,
    store: KvStore,
    batch_tasks: usize,
}

impl<R: TxRuntime> KvServer<R> {
    /// Boots a server on runtime `R`. The substrate's speculative depth is
    /// raised to at least [`KvServerConfig::batch_tasks`], so sessions can
    /// always run a full batch plan as one task group.
    pub fn new(config: &KvServerConfig) -> Self {
        let runtime = R::new(config.substrate());
        let store = KvStore::create(&mut runtime.direct(), &config.store)
            .expect("KV store allocation failed");
        KvServer {
            runtime,
            store,
            batch_tasks: config.batch_tasks.max(1),
        }
    }

    /// The store handle (for direct inspection in tests).
    pub fn store(&self) -> KvStore {
        self.store
    }

    /// Shard-groups per batch.
    pub fn batch_tasks(&self) -> usize {
        self.batch_tasks
    }

    /// The runtime this server runs on (`"swisstm"`, `"tlstm"`, `"seqref"`).
    pub fn runtime_label(&self) -> &'static str {
        R::LABEL
    }

    /// The shared transactional heap.
    pub fn heap(&self) -> &TxHeap {
        self.runtime.heap()
    }

    /// Non-transactional direct access (initialisation and test inspection
    /// only — never while sessions are running).
    pub fn direct(&self) -> DirectMem<'_> {
        self.runtime.direct()
    }

    /// Loads `entries` into the store non-transactionally (pre-measurement
    /// population, as the paper's benchmarks do).
    pub fn populate(&self, entries: impl IntoIterator<Item = (u64, Vec<u64>)>) {
        let mut mem = self.direct();
        for (key, value) in entries {
            self.store
                .put(&mut mem, key, &value)
                .expect("populate cannot abort");
        }
    }

    /// The runtime's statistics counters accumulated so far.
    pub fn stats(&self) -> StatsSnapshot {
        self.runtime.stats()
    }

    /// Per-shard statistics snapshots (see [`TxRuntime::stats_per_shard`]).
    pub fn stats_per_shard(&self) -> Vec<StatsSnapshot> {
        self.runtime.stats_per_shard()
    }

    /// Opens a session. Each client thread needs its own.
    pub fn session(&self) -> KvSession<R> {
        KvSession {
            session: self.runtime.session(),
            store: self.store,
            batch_tasks: self.batch_tasks,
        }
    }
}

impl KvServer<SwisstmRuntime> {
    /// Boots a server on the SwissTM baseline runtime.
    pub fn swisstm(config: &KvServerConfig) -> Self {
        Self::new(config)
    }
}

impl KvServer<TlstmRuntime> {
    /// Boots a server on the TLSTM runtime (batches split into speculative
    /// tasks).
    pub fn tlstm(config: &KvServerConfig) -> Self {
        Self::new(config)
    }
}

impl KvServer<SeqRefRuntime> {
    /// Boots a server on the sequential global-lock reference runtime.
    pub fn seqref(config: &KvServerConfig) -> Self {
        Self::new(config)
    }
}

/// A per-client handle: submits operations and batches to the server.
#[derive(Debug)]
pub struct KvSession<R: TxRuntime> {
    session: R::Session,
    store: KvStore,
    batch_tasks: usize,
}

impl<R: TxRuntime> KvSession<R> {
    /// Reads `key` in its own transaction.
    pub fn get(&mut self, key: u64) -> Option<Vec<u64>> {
        match self.batch_one(KvOp::Get { key }) {
            KvReply::Value(v) => v,
            other => unreachable!("get produced {other:?}"),
        }
    }

    /// Writes `key → value` in its own transaction. Returns `true` on fresh
    /// insert.
    pub fn put(&mut self, key: u64, value: Vec<u64>) -> bool {
        match self.batch_one(KvOp::Put { key, value }) {
            KvReply::Inserted(fresh) => fresh,
            other => unreachable!("put produced {other:?}"),
        }
    }

    /// Deletes `key` in its own transaction. Returns `true` if it existed.
    pub fn delete(&mut self, key: u64) -> bool {
        match self.batch_one(KvOp::Delete { key }) {
            KvReply::Removed(existed) => existed,
            other => unreachable!("delete produced {other:?}"),
        }
    }

    /// Compare-and-swap in its own transaction.
    pub fn cas(&mut self, key: u64, expected: Vec<u64>, new: Vec<u64>) -> bool {
        match self.batch_one(KvOp::Cas { key, expected, new }) {
            KvReply::Swapped(swapped) => swapped,
            other => unreachable!("cas produced {other:?}"),
        }
    }

    /// Ordered scan in its own transaction.
    pub fn scan(&mut self, lo: u64, hi: u64, limit: u64) -> Vec<(u64, u64)> {
        match self.batch_one(KvOp::Scan { lo, hi, limit }) {
            KvReply::Scan(hits) => hits,
            other => unreachable!("scan produced {other:?}"),
        }
    }

    fn batch_one(&mut self, op: KvOp) -> KvReply {
        self.batch(vec![op])
            .pop()
            .expect("single-op batch yields one reply")
    }

    /// Executes `ops` as one atomic transaction and returns one reply per
    /// operation, in submission order. Execution follows the batch plan (see
    /// [`crate::ops::plan_batch`]); under a speculative runtime each
    /// non-empty shard-group runs as its own task.
    pub fn batch(&mut self, ops: Vec<KvOp>) -> Vec<KvReply> {
        self.batch_inner(ops, None).0
    }

    /// Executes several independently-submitted sub-batches (typically one
    /// per client request) as **one** atomic transaction and splits the
    /// replies back per sub-batch — the server-side coalescing seam the
    /// network front-end builds on: N requests share one plan, one commit.
    /// Request order and operation order within each request are preserved;
    /// empty sub-batches yield empty reply lists.
    pub fn batch_with_replies(&mut self, requests: Vec<Vec<KvOp>>) -> Vec<Vec<KvReply>> {
        let lens: Vec<usize> = requests.iter().map(Vec::len).collect();
        let replies = self.batch(requests.into_iter().flatten().collect());
        crate::ops::split_replies(&lens, replies)
    }

    /// Like [`Self::batch`], but additionally stamps the transaction with a
    /// **commit sequence number**: the word at `seq` is read and incremented
    /// *inside* the transaction, so the returned numbers of concurrent
    /// batches are dense and ordered exactly as the STM serialises their
    /// commits — the property the durable front-end's redo log relies on.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty (there is nothing to stamp).
    pub fn batch_logged(&mut self, ops: Vec<KvOp>, seq: WordAddr) -> (Vec<KvReply>, u64) {
        assert!(!ops.is_empty(), "cannot stamp an empty batch");
        let (replies, lsn) = self.batch_inner(ops, Some(seq));
        (
            replies,
            lsn.expect("stamped batches always produce a sequence"),
        )
    }

    fn batch_inner(
        &mut self,
        ops: Vec<KvOp>,
        seq: Option<WordAddr>,
    ) -> (Vec<KvReply>, Option<u64>) {
        if ops.is_empty() {
            return (Vec::new(), None);
        }
        let store = self.store;
        let groups: Vec<Vec<usize>> = plan_batch(&ops, store.shards(), self.batch_tasks)
            .into_iter()
            .filter(|group| !group.is_empty())
            .collect();
        if !R::SPECULATIVE {
            // Sequential runtimes apply the plan's groups in order inside one
            // monomorphized transaction: the memory operations inline into
            // the runtime's transaction loop instead of going through the
            // task group's `&mut dyn TxMem` erasure.
            let ops_ref = &ops;
            let groups_ref = &groups;
            let (filled, lsn) = self.session.run(|mem| {
                let lsn = match seq {
                    Some(seq) => {
                        let lsn = mem.read(seq)?;
                        mem.write(seq, lsn + 1)?;
                        Some(lsn)
                    }
                    None => None,
                };
                let mut filled: Vec<(usize, KvReply)> = Vec::with_capacity(ops_ref.len());
                for group in groups_ref {
                    for &index in group {
                        filled.push((index, store.apply(mem, &ops_ref[index])?));
                    }
                }
                Ok((filled, lsn))
            });
            debug_assert_eq!(lsn.is_some(), seq.is_some());
            let mut replies: Vec<Option<KvReply>> = vec![None; ops.len()];
            for (index, reply) in filled {
                replies[index] = Some(reply);
            }
            return (
                replies
                    .into_iter()
                    .map(|r| r.expect("plan covers every op"))
                    .collect(),
                lsn,
            );
        }
        // One reply vector per group, filled inside the transaction. The
        // sequence stamp rides in the first group's body; its position inside
        // the transaction is irrelevant for the commit order it captures.
        let mut group_replies: Vec<Vec<(usize, KvReply)>> =
            groups.iter().map(|g| Vec::with_capacity(g.len())).collect();
        let mut lsn_out: Option<u64> = None;
        {
            let mut lsn_slot = Some(&mut lsn_out);
            let mut pending_seq = seq;
            let ops = &ops;
            let mut bodies: Vec<BoxedTaskBody<'_>> = groups
                .iter()
                .zip(group_replies.iter_mut())
                .map(|(group, replies)| {
                    let task_seq = pending_seq.take();
                    let mut task_lsn = if task_seq.is_some() {
                        lsn_slot.take()
                    } else {
                        None
                    };
                    let body = move |mem: &mut dyn TxMem| -> Result<(), Abort> {
                        if let Some(seq) = task_seq {
                            let lsn = mem.read(seq)?;
                            mem.write(seq, lsn + 1)?;
                            // Re-executions overwrite the slot, so only the
                            // committed execution's stamp survives (same
                            // idiom as the reply slots below).
                            **task_lsn.as_mut().expect("stamping body owns the slot") = Some(lsn);
                        }
                        // A body may re-execute after a conflict; start each
                        // execution from an empty reply slot so only the
                        // committed execution's replies survive.
                        replies.clear();
                        for &index in group {
                            replies.push((index, store.apply(mem, &ops[index])?));
                        }
                        Ok(())
                    };
                    Box::new(body) as BoxedTaskBody<'_>
                })
                .collect();
            run_boxed_tasks(&mut self.session, &mut bodies);
        }
        debug_assert_eq!(lsn_out.is_some(), seq.is_some());
        let mut replies: Vec<Option<KvReply>> = vec![None; ops.len()];
        for filled in group_replies {
            for (index, reply) in filled {
                replies[index] = Some(reply);
            }
        }
        (
            replies
                .into_iter()
                .map(|r| r.expect("plan covers every op"))
                .collect(),
            lsn_out,
        )
    }

    /// Runs `body` as one atomic transaction (a single task under a
    /// speculative runtime) and returns its committed result. The closure
    /// receives a `&mut dyn TxMem`, so store code generic over the memory
    /// runs inside it on any runtime; like any transaction body it may
    /// re-execute and must be side-effect free apart from its return value.
    pub fn transact<T, F>(&mut self, body: F) -> T
    where
        F: Fn(&mut dyn TxMem) -> Result<T, Abort> + Send + Sync,
        T: Send,
    {
        self.session.run(move |mem| body(mem as &mut dyn TxMem))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::checksum;
    use crate::RefStore;
    use txmem::TxConfig;

    fn test_config(batch_tasks: usize) -> KvServerConfig {
        KvServerConfig {
            store: KvStoreParams {
                shards: 8,
                expected_keys: 256,
            },
            batch_tasks,
            tx: TxConfig::small(),
        }
    }

    /// Runs `check` once per registered runtime (the pluggability the
    /// [`TxRuntime`] redesign exists to guarantee).
    fn on_every_runtime(batch_tasks: usize, check: impl Fn(&dyn ServerUnderTest)) {
        check(&KvServer::swisstm(&test_config(batch_tasks)));
        check(&KvServer::tlstm(&test_config(batch_tasks)));
        check(&KvServer::seqref(&test_config(batch_tasks)));
    }

    /// Object-safe view of a server used to iterate heterogeneous
    /// `KvServer<R>` instantiations in tests.
    trait ServerUnderTest {
        fn label(&self) -> &'static str;
        fn groups(&self) -> usize;
        fn populate_range(&self, n: u64);
        fn run_batch(&self, ops: Vec<KvOp>) -> Vec<KvReply>;
        fn dump(&self) -> Vec<(u64, Vec<u64>)>;
        fn check(&self);
        fn single_op_round_trip(&self);
    }

    impl<R: TxRuntime> ServerUnderTest for KvServer<R> {
        fn label(&self) -> &'static str {
            self.runtime_label()
        }
        fn groups(&self) -> usize {
            self.batch_tasks()
        }
        fn populate_range(&self, n: u64) {
            self.populate((0..n).map(|k| (k, vec![k, k + 1])));
        }
        fn run_batch(&self, ops: Vec<KvOp>) -> Vec<KvReply> {
            self.session().batch(ops)
        }
        fn dump(&self) -> Vec<(u64, Vec<u64>)> {
            self.store().dump(&mut self.direct()).unwrap()
        }
        fn check(&self) {
            self.store().check_consistency(&mut self.direct()).unwrap();
        }
        fn single_op_round_trip(&self) {
            let label = self.runtime_label();
            let mut session = self.session();
            assert!(session.put(1, vec![10, 20]), "{label}");
            assert_eq!(session.get(1), Some(vec![10, 20]), "{label}");
            assert!(session.cas(1, vec![10, 20], vec![30, 40]), "{label}");
            assert!(!session.cas(1, vec![10, 20], vec![0, 0]), "{label}");
            assert_eq!(
                session.scan(0, 10, 10),
                vec![(1, checksum(&[30, 40]))],
                "{label}"
            );
            assert!(session.delete(1), "{label}");
            assert_eq!(session.get(1), None, "{label}");
        }
    }

    #[test]
    fn single_op_api_round_trips_on_every_runtime() {
        on_every_runtime(2, |server| server.single_op_round_trip());
    }

    #[test]
    fn batches_are_atomic_and_match_the_oracle() {
        on_every_runtime(4, |server| {
            let label = server.label();
            server.populate_range(32);
            let mut oracle = RefStore::new(8);
            for k in 0..32u64 {
                oracle.put(k, &[k, k + 1]);
            }
            let ops: Vec<KvOp> = (0..16u64)
                .map(|i| match i % 4 {
                    0 => KvOp::Get { key: i * 2 },
                    1 => KvOp::Put {
                        key: i * 2,
                        value: vec![i, i, i],
                    },
                    2 => KvOp::Cas {
                        key: i * 2,
                        expected: vec![i * 2, i * 2 + 1],
                        new: vec![99, 99],
                    },
                    _ => KvOp::Scan {
                        lo: i,
                        hi: i + 8,
                        limit: 4,
                    },
                })
                .collect();
            let got = server.run_batch(ops.clone());
            let want = oracle.batch(&ops, server.groups());
            assert_eq!(got, want, "{label} replies diverge from oracle");
            assert_eq!(
                server.dump(),
                oracle.dump(),
                "{label} committed state diverges from oracle"
            );
            server.check();
        });
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        on_every_runtime(2, |server| {
            assert!(
                server.run_batch(Vec::new()).is_empty(),
                "{}",
                server.label()
            );
        });
    }

    #[test]
    fn coalesced_requests_share_one_transaction_and_split_replies() {
        let server = KvServer::swisstm(&test_config(4));
        server.populate((0..32u64).map(|k| (k, vec![k])));
        let mut oracle = RefStore::new(8);
        for k in 0..32u64 {
            oracle.put(k, &[k]);
        }
        // Three clients' requests, including an empty one.
        let requests: Vec<Vec<KvOp>> = vec![
            vec![
                KvOp::Put {
                    key: 3,
                    value: vec![100],
                },
                KvOp::Get { key: 7 },
            ],
            vec![],
            vec![
                KvOp::Delete { key: 11 },
                KvOp::Cas {
                    key: 13,
                    expected: vec![13],
                    new: vec![99],
                },
                KvOp::Scan {
                    lo: 0,
                    hi: 16,
                    limit: 32,
                },
            ],
        ];
        let committed_before = server.stats().tx_commits;
        let split = server.session().batch_with_replies(requests.clone());
        assert_eq!(
            server.stats().tx_commits - committed_before,
            1,
            "coalesced requests must share one transaction"
        );
        // Replies match running the concatenated batch on the oracle, split
        // back at the request boundaries.
        let concatenated: Vec<KvOp> = requests.iter().flatten().cloned().collect();
        let want = oracle.batch(&concatenated, server.batch_tasks());
        assert_eq!(split.len(), 3);
        assert_eq!(split[0], want[..2].to_vec());
        assert!(split[1].is_empty());
        assert_eq!(split[2], want[2..].to_vec());
    }

    #[test]
    fn tlstm_batches_actually_split_into_tasks() {
        let server = KvServer::tlstm(&test_config(4));
        server.populate((0..64u64).map(|k| (k, vec![k])));
        let mut session = server.session();
        // A batch over many keys lands in several shard-groups.
        let ops: Vec<KvOp> = (0..32u64).map(|k| KvOp::Get { key: k * 3 }).collect();
        let replies = session.batch(ops);
        assert_eq!(replies.len(), 32);
        let stats = server.stats();
        assert!(
            stats.task_commits > stats.tx_commits,
            "a split batch must commit more tasks than transactions \
             (tasks={}, txns={})",
            stats.task_commits,
            stats.tx_commits
        );
    }

    #[test]
    fn generic_servers_expose_runtime_labels() {
        assert_eq!(
            KvServer::swisstm(&test_config(1)).runtime_label(),
            "swisstm"
        );
        assert_eq!(KvServer::tlstm(&test_config(1)).runtime_label(), "tlstm");
        assert_eq!(KvServer::seqref(&test_config(1)).runtime_label(), "seqref");
    }
}
