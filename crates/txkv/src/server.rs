//! The in-process serving front-end.
//!
//! A [`KvServer`] owns one runtime (SwissTM or TLSTM) and one [`KvStore`];
//! each client obtains a [`KvSession`] (one per client thread) and submits
//! single operations or multi-operation batches. A batch executes as **one
//! atomic transaction** regardless of how many shards it touches.
//!
//! Under TLSTM a batch is additionally *split into speculative tasks*, one
//! per shard-group (see [`crate::ops::plan_batch`]): the paper's
//! TLS-inside-transactions model applied to the canonical middleware
//! long-transaction — a multi-key read-modify-write batch. The tasks run out
//! of order on the worker pool and commit in plan order, so the batch keeps
//! transactional atomicity while its per-shard work overlaps. SwissTM
//! executes the identical plan sequentially inside one transaction, which is
//! what makes the two runtimes directly comparable (and conformance-testable
//! against [`crate::RefStore::batch`]).

use std::sync::{Arc, Mutex};

use swisstm::{SwisstmRuntime, SwisstmThread};
use tlstm::{TaskCtx, TlstmRuntime, TxnSpec, UThread};
use txmem::{Abort, DirectMem, StatsSnapshot, TxConfig, TxHeap, TxMem, WordAddr};

use crate::ops::{plan_batch, KvOp, KvReply};
use crate::store::{KvStore, KvStoreParams};

/// Configuration of a [`KvServer`].
#[derive(Debug, Clone)]
pub struct KvServerConfig {
    /// Store sizing (shards, expected keys).
    pub store: KvStoreParams,
    /// Shard-groups a batch is planned into. Under TLSTM each non-empty
    /// group becomes one speculative task; under SwissTM the plan executes
    /// sequentially. Both runtimes must use the same value to produce
    /// identical batch semantics.
    pub batch_tasks: usize,
    /// Substrate configuration (heap size, lock table, spin limits).
    pub tx: TxConfig,
}

impl Default for KvServerConfig {
    fn default() -> Self {
        KvServerConfig {
            store: KvStoreParams::default(),
            batch_tasks: 4,
            tx: TxConfig::default(),
        }
    }
}

impl KvServerConfig {
    fn substrate(&self) -> TxConfig {
        TxConfig {
            spec_depth: self.tx.spec_depth.max(self.batch_tasks.max(1)),
            ..self.tx.clone()
        }
    }
}

#[derive(Debug)]
enum ServerInner {
    Swisstm(Arc<SwisstmRuntime>),
    Tlstm(Arc<TlstmRuntime>),
}

/// A transactional key-value server: one runtime, one store, many sessions.
#[derive(Debug)]
pub struct KvServer {
    inner: ServerInner,
    store: KvStore,
    batch_tasks: usize,
}

impl KvServer {
    /// Boots a server on the SwissTM baseline runtime.
    pub fn swisstm(config: &KvServerConfig) -> Self {
        let runtime = SwisstmRuntime::new(config.substrate());
        let store = KvStore::create(&mut runtime.direct(), &config.store)
            .expect("KV store allocation failed");
        KvServer {
            inner: ServerInner::Swisstm(runtime),
            store,
            batch_tasks: config.batch_tasks.max(1),
        }
    }

    /// Boots a server on the TLSTM runtime (batches split into speculative
    /// tasks).
    pub fn tlstm(config: &KvServerConfig) -> Self {
        let runtime = TlstmRuntime::new(config.substrate());
        let store = KvStore::create(&mut runtime.direct(), &config.store)
            .expect("KV store allocation failed");
        KvServer {
            inner: ServerInner::Tlstm(runtime),
            store,
            batch_tasks: config.batch_tasks.max(1),
        }
    }

    /// The store handle (for direct inspection in tests).
    pub fn store(&self) -> KvStore {
        self.store
    }

    /// Shard-groups per batch.
    pub fn batch_tasks(&self) -> usize {
        self.batch_tasks
    }

    /// The runtime this server measures (`"swisstm"` or `"tlstm"`).
    pub fn runtime_label(&self) -> &'static str {
        match &self.inner {
            ServerInner::Swisstm(_) => "swisstm",
            ServerInner::Tlstm(_) => "tlstm",
        }
    }

    /// The shared transactional heap.
    pub fn heap(&self) -> &TxHeap {
        match &self.inner {
            ServerInner::Swisstm(rt) => rt.heap(),
            ServerInner::Tlstm(rt) => rt.heap(),
        }
    }

    /// Non-transactional direct access (initialisation and test inspection
    /// only — never while sessions are running).
    pub fn direct(&self) -> DirectMem<'_> {
        match &self.inner {
            ServerInner::Swisstm(rt) => rt.direct(),
            ServerInner::Tlstm(rt) => rt.direct(),
        }
    }

    /// Loads `entries` into the store non-transactionally (pre-measurement
    /// population, as the paper's benchmarks do).
    pub fn populate(&self, entries: impl IntoIterator<Item = (u64, Vec<u64>)>) {
        let mut mem = self.direct();
        for (key, value) in entries {
            self.store
                .put(&mut mem, key, &value)
                .expect("populate cannot abort");
        }
    }

    /// The runtime's statistics counters accumulated so far.
    pub fn stats(&self) -> StatsSnapshot {
        match &self.inner {
            ServerInner::Swisstm(rt) => rt.stats(),
            ServerInner::Tlstm(rt) => rt.stats(),
        }
    }

    /// Opens a session. Each client thread needs its own.
    pub fn session(&self) -> KvSession {
        let inner = match &self.inner {
            ServerInner::Swisstm(rt) => SessionInner::Swisstm(rt.register_thread()),
            ServerInner::Tlstm(rt) => {
                SessionInner::Tlstm(rt.register_uthread(self.batch_tasks.max(1)))
            }
        };
        KvSession {
            inner,
            store: self.store,
            batch_tasks: self.batch_tasks,
        }
    }
}

#[derive(Debug)]
enum SessionInner {
    Swisstm(SwisstmThread),
    Tlstm(UThread),
}

/// A per-client handle: submits operations and batches to the server.
#[derive(Debug)]
pub struct KvSession {
    inner: SessionInner,
    store: KvStore,
    batch_tasks: usize,
}

impl KvSession {
    /// Reads `key` in its own transaction.
    pub fn get(&mut self, key: u64) -> Option<Vec<u64>> {
        match self.batch_one(KvOp::Get { key }) {
            KvReply::Value(v) => v,
            other => unreachable!("get produced {other:?}"),
        }
    }

    /// Writes `key → value` in its own transaction. Returns `true` on fresh
    /// insert.
    pub fn put(&mut self, key: u64, value: Vec<u64>) -> bool {
        match self.batch_one(KvOp::Put { key, value }) {
            KvReply::Inserted(fresh) => fresh,
            other => unreachable!("put produced {other:?}"),
        }
    }

    /// Deletes `key` in its own transaction. Returns `true` if it existed.
    pub fn delete(&mut self, key: u64) -> bool {
        match self.batch_one(KvOp::Delete { key }) {
            KvReply::Removed(existed) => existed,
            other => unreachable!("delete produced {other:?}"),
        }
    }

    /// Compare-and-swap in its own transaction.
    pub fn cas(&mut self, key: u64, expected: Vec<u64>, new: Vec<u64>) -> bool {
        match self.batch_one(KvOp::Cas { key, expected, new }) {
            KvReply::Swapped(swapped) => swapped,
            other => unreachable!("cas produced {other:?}"),
        }
    }

    /// Ordered scan in its own transaction.
    pub fn scan(&mut self, lo: u64, hi: u64, limit: u64) -> Vec<(u64, u64)> {
        match self.batch_one(KvOp::Scan { lo, hi, limit }) {
            KvReply::Scan(hits) => hits,
            other => unreachable!("scan produced {other:?}"),
        }
    }

    fn batch_one(&mut self, op: KvOp) -> KvReply {
        self.batch(vec![op])
            .pop()
            .expect("single-op batch yields one reply")
    }

    /// Executes `ops` as one atomic transaction and returns one reply per
    /// operation, in submission order. Execution follows the batch plan (see
    /// [`crate::ops::plan_batch`]); under TLSTM each non-empty shard-group
    /// runs as its own speculative task.
    pub fn batch(&mut self, ops: Vec<KvOp>) -> Vec<KvReply> {
        self.batch_inner(ops, None).0
    }

    /// Like [`Self::batch`], but additionally stamps the transaction with a
    /// **commit sequence number**: the word at `seq` is read and incremented
    /// *inside* the transaction, so the returned numbers of concurrent
    /// batches are dense and ordered exactly as the STM serialises their
    /// commits — the property the durable front-end's redo log relies on.
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty (there is nothing to stamp).
    pub fn batch_logged(&mut self, ops: Vec<KvOp>, seq: WordAddr) -> (Vec<KvReply>, u64) {
        assert!(!ops.is_empty(), "cannot stamp an empty batch");
        let (replies, lsn) = self.batch_inner(ops, Some(seq));
        (
            replies,
            lsn.expect("stamped batches always produce a sequence"),
        )
    }

    fn batch_inner(
        &mut self,
        ops: Vec<KvOp>,
        seq: Option<WordAddr>,
    ) -> (Vec<KvReply>, Option<u64>) {
        if ops.is_empty() {
            return (Vec::new(), None);
        }
        let store = self.store;
        let plan = plan_batch(&ops, store.shards(), self.batch_tasks);
        match &mut self.inner {
            SessionInner::Swisstm(thread) => {
                let (replies, lsn) = thread.atomic(|tx| {
                    let lsn = match seq {
                        Some(seq) => {
                            let lsn = tx.read(seq)?;
                            tx.write(seq, lsn + 1)?;
                            Some(lsn)
                        }
                        None => None,
                    };
                    let mut replies: Vec<Option<KvReply>> = vec![None; ops.len()];
                    for group in &plan {
                        for &index in group {
                            replies[index] = Some(store.apply(tx, &ops[index])?);
                        }
                    }
                    Ok((replies, lsn))
                });
                (
                    replies
                        .into_iter()
                        .map(|r| r.expect("plan covers every op"))
                        .collect(),
                    lsn,
                )
            }
            SessionInner::Tlstm(uthread) => {
                let ops = Arc::new(ops);
                let mut bodies = Vec::new();
                let mut slots = Vec::new();
                let lsn_slot: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
                // The sequence bump rides in the first non-empty group's
                // task; its position inside the transaction is irrelevant
                // for the commit order the stamp captures.
                let mut pending_seq = seq;
                for group in plan {
                    if group.is_empty() {
                        continue;
                    }
                    let slot: Arc<Mutex<Vec<(usize, KvReply)>>> =
                        Arc::new(Mutex::new(Vec::with_capacity(group.len())));
                    let ops = Arc::clone(&ops);
                    let task_slot = Arc::clone(&slot);
                    let task_seq = pending_seq.take();
                    let task_lsn_slot = Arc::clone(&lsn_slot);
                    bodies.push(tlstm::task(move |ctx: &mut TaskCtx<'_>| {
                        if let Some(seq) = task_seq {
                            // Re-executions overwrite the slot, so only the
                            // committed execution's stamp survives (same
                            // idiom as the reply slots below).
                            let lsn = ctx.read(seq)?;
                            ctx.write(seq, lsn + 1)?;
                            *task_lsn_slot.lock().expect("lsn slot poisoned") = Some(lsn);
                        }
                        // A task may re-execute after a conflict; start each
                        // execution from an empty reply slot so only the
                        // committed execution's replies survive.
                        let mut filled = Vec::with_capacity(group.len());
                        for &index in &group {
                            filled.push((index, store.apply(ctx, &ops[index])?));
                        }
                        *task_slot.lock().expect("reply slot poisoned") = filled;
                        Ok(())
                    }));
                    slots.push(slot);
                }
                uthread.execute(vec![TxnSpec::new(bodies)]);
                let mut replies: Vec<Option<KvReply>> = vec![None; ops.len()];
                for slot in slots {
                    for (index, reply) in slot.lock().expect("reply slot poisoned").drain(..) {
                        replies[index] = Some(reply);
                    }
                }
                let lsn = lsn_slot.lock().expect("lsn slot poisoned").take();
                debug_assert_eq!(lsn.is_some(), seq.is_some());
                (
                    replies
                        .into_iter()
                        .map(|r| r.expect("every task filled its slot"))
                        .collect(),
                    lsn,
                )
            }
        }
    }

    /// Runs `body` as one atomic transaction (a single task under TLSTM) and
    /// returns its committed result. The closure receives a `&mut dyn TxMem`,
    /// so store code generic over the memory can run inside it on either
    /// runtime; like any transaction body it may re-execute and must be
    /// side-effect free apart from its return value.
    pub fn transact<T, F>(&mut self, body: F) -> T
    where
        F: Fn(&mut dyn TxMem) -> Result<T, Abort> + Send + Sync + 'static,
        T: Send + 'static,
    {
        match &mut self.inner {
            SessionInner::Swisstm(thread) => thread.atomic(|tx| body(tx)),
            SessionInner::Tlstm(uthread) => {
                let slot: Arc<Mutex<Option<T>>> = Arc::new(Mutex::new(None));
                let task_slot = Arc::clone(&slot);
                uthread.execute(vec![TxnSpec::single(move |ctx: &mut TaskCtx<'_>| {
                    let value = body(ctx)?;
                    *task_slot.lock().expect("transact slot poisoned") = Some(value);
                    Ok(())
                })]);
                let value = slot
                    .lock()
                    .expect("transact slot poisoned")
                    .take()
                    .expect("committed transaction filled its slot");
                value
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::checksum;
    use crate::RefStore;
    use txmem::TxConfig;

    fn test_config(batch_tasks: usize) -> KvServerConfig {
        KvServerConfig {
            store: KvStoreParams {
                shards: 8,
                expected_keys: 256,
            },
            batch_tasks,
            tx: TxConfig::small(),
        }
    }

    fn servers(batch_tasks: usize) -> [KvServer; 2] {
        [
            KvServer::swisstm(&test_config(batch_tasks)),
            KvServer::tlstm(&test_config(batch_tasks)),
        ]
    }

    #[test]
    fn single_op_api_round_trips_on_both_runtimes() {
        for server in servers(2) {
            let label = server.runtime_label();
            let mut session = server.session();
            assert!(session.put(1, vec![10, 20]), "{label}");
            assert_eq!(session.get(1), Some(vec![10, 20]), "{label}");
            assert!(session.cas(1, vec![10, 20], vec![30, 40]), "{label}");
            assert!(!session.cas(1, vec![10, 20], vec![0, 0]), "{label}");
            assert_eq!(
                session.scan(0, 10, 10),
                vec![(1, checksum(&[30, 40]))],
                "{label}"
            );
            assert!(session.delete(1), "{label}");
            assert_eq!(session.get(1), None, "{label}");
        }
    }

    #[test]
    fn batches_are_atomic_and_match_the_oracle() {
        for server in servers(4) {
            let label = server.runtime_label();
            server.populate((0..32u64).map(|k| (k, vec![k, k + 1])));
            let mut oracle = RefStore::new(8);
            for k in 0..32u64 {
                oracle.put(k, &[k, k + 1]);
            }
            let mut session = server.session();
            let ops: Vec<KvOp> = (0..16u64)
                .map(|i| match i % 4 {
                    0 => KvOp::Get { key: i * 2 },
                    1 => KvOp::Put {
                        key: i * 2,
                        value: vec![i, i, i],
                    },
                    2 => KvOp::Cas {
                        key: i * 2,
                        expected: vec![i * 2, i * 2 + 1],
                        new: vec![99, 99],
                    },
                    _ => KvOp::Scan {
                        lo: i,
                        hi: i + 8,
                        limit: 4,
                    },
                })
                .collect();
            let got = session.batch(ops.clone());
            let want = oracle.batch(&ops, server.batch_tasks());
            assert_eq!(got, want, "{label} replies diverge from oracle");
            assert_eq!(
                server.store().dump(&mut server.direct()).unwrap(),
                oracle.dump(),
                "{label} committed state diverges from oracle"
            );
            server
                .store()
                .check_consistency(&mut server.direct())
                .unwrap();
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        for server in servers(2) {
            let mut session = server.session();
            assert!(session.batch(Vec::new()).is_empty());
        }
    }

    #[test]
    fn tlstm_batches_actually_split_into_tasks() {
        let server = KvServer::tlstm(&test_config(4));
        server.populate((0..64u64).map(|k| (k, vec![k])));
        let mut session = server.session();
        // A batch over many keys lands in several shard-groups.
        let ops: Vec<KvOp> = (0..32u64).map(|k| KvOp::Get { key: k * 3 }).collect();
        let replies = session.batch(ops);
        assert_eq!(replies.len(), 32);
        let stats = server.stats();
        assert!(
            stats.task_commits > stats.tx_commits,
            "a split batch must commit more tasks than transactions \
             (tasks={}, txns={})",
            stats.task_commits,
            stats.tx_commits
        );
    }
}
