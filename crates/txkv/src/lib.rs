//! # txkv — a sharded transactional key-value store
//!
//! The serving-shaped subsystem of the TLSTM reproduction: a concurrent,
//! transactionally-consistent key-value store layered on the word heap
//! ([`txmem`]) and the transactional collections ([`txcollections`]), generic
//! over both runtimes through the shared [`txmem::TxMem`] trait.
//!
//! Three layers:
//!
//! * [`KvStore`] — N hash-sharded [`txcollections::TxHashMap`] buckets (shard
//!   chosen by an independent key hash, each shard pre-sized so steady state
//!   never rehashes) plus a [`txcollections::TxRbTree`] secondary index that
//!   serves ordered `scan(lo..hi)` queries. Operations: `get`, `put`,
//!   `delete`, `cas`, `scan`, and multi-operation atomic batches.
//! * [`KvServer`] / [`KvSession`] — the in-process front-end: one runtime
//!   (SwissTM or TLSTM) and per-client session handles. Under TLSTM a batch
//!   is split into speculative tasks, one per shard-group, demonstrating the
//!   paper's TLS-inside-transactions win on long multi-key operations.
//! * [`RefStore`] — the sequential oracle with identical semantics
//!   (including batch plan order), used by the conformance tests.
//!
//! A fourth, optional layer makes the store crash-safe: [`DurableKvStore`]
//! (module [`durable`]) wraps a [`KvServer`] with the `txlog` write-ahead
//! log — committed write batches are redo-logged with a commit sequence
//! number assigned at STM commit time, group-committed with a configurable
//! fsync policy, snapshotted, and recovered after a crash to an exact
//! batch-boundary prefix that contains every acknowledged write. On a
//! storage fault the store degrades instead of dying ([`Health`]): reads
//! keep serving the committed in-memory state, writes fail fast with typed
//! [`WalError`]s, and [`DurableKvStore::try_rearm`] restores write service
//! in place once the fault clears.
//!
//! ## Example
//!
//! ```rust
//! use txkv::{KvOp, KvReply, KvServer, KvServerConfig};
//!
//! let server = KvServer::tlstm(&KvServerConfig::default());
//! server.populate((0..100u64).map(|k| (k, vec![k, k])));
//!
//! let mut session = server.session();
//! let replies = session.batch(vec![
//!     KvOp::Get { key: 7 },
//!     KvOp::Cas { key: 7, expected: vec![7, 7], new: vec![8, 8] },
//!     KvOp::Scan { lo: 0, hi: 10, limit: 100 },
//! ]);
//! assert_eq!(replies[0], KvReply::Value(Some(vec![7, 7])));
//! assert_eq!(replies[1], KvReply::Swapped(true));
//! assert_eq!(session.get(7), Some(vec![8, 8]));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod durable;
pub mod ops;
pub mod ref_store;
pub mod server;
pub mod store;

pub use durable::{DurableKvConfig, DurableKvSession, DurableKvStore, Health, RecoveryReport};
pub use ops::{checksum, plan_batch, shard_of, split_replies, KvOp, KvReply};
pub use ref_store::RefStore;
pub use server::{KvServer, KvServerConfig, KvSession};
pub use store::{KvStore, KvStoreParams};

pub use txlog::{
    CrashPoints, Fault, FaultBudget, FaultError, FaultFs, FaultPlan, FsyncPolicy, RealFs,
    RetryPolicy, StorageOp, WalError, WalFs,
};
pub use txmem::{Abort, TxMem, WordAddr};
