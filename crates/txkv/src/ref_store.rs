//! The sequential reference oracle.
//!
//! [`RefStore`] implements the exact operation semantics of [`crate::KvStore`]
//! — including the shard-group *plan order* of batches — on a plain
//! `BTreeMap`, with no concurrency and no transactions. Conformance tests run
//! identical operation streams through a `KvStore` (on either runtime) and a
//! `RefStore` and require byte-identical replies and final contents.

use std::collections::BTreeMap;

use crate::ops::{checksum, plan_batch, KvOp, KvReply};

/// A sequential, non-transactional model of the store.
#[derive(Debug, Clone, Default)]
pub struct RefStore {
    map: BTreeMap<u64, Vec<u64>>,
    n_shards: u64,
}

impl RefStore {
    /// Creates an empty oracle modelling a store with `n_shards` shards (the
    /// shard count only matters for batch planning).
    pub fn new(n_shards: u64) -> Self {
        RefStore {
            map: BTreeMap::new(),
            n_shards: n_shards.max(1),
        }
    }

    /// Number of resident keys.
    pub fn len(&self) -> u64 {
        self.map.len() as u64
    }

    /// `true` if the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Reads the value of `key`.
    pub fn get(&self, key: u64) -> Option<Vec<u64>> {
        self.map.get(&key).cloned()
    }

    /// Inserts or overwrites `key → value`. Returns `true` on fresh insert.
    pub fn put(&mut self, key: u64, value: &[u64]) -> bool {
        self.map.insert(key, value.to_vec()).is_none()
    }

    /// Removes `key`. Returns `true` if it was present.
    pub fn delete(&mut self, key: u64) -> bool {
        self.map.remove(&key).is_some()
    }

    /// Compare-and-swap with the same semantics as the transactional store.
    pub fn cas(&mut self, key: u64, expected: &[u64], new: &[u64]) -> bool {
        match self.map.get_mut(&key) {
            Some(current) if current.as_slice() == expected => {
                *current = new.to_vec();
                true
            }
            _ => false,
        }
    }

    /// Ordered scan of `lo..hi`, at most `limit` entries, as
    /// `(key, checksum(value))` pairs.
    pub fn scan(&self, lo: u64, hi: u64, limit: u64) -> Vec<(u64, u64)> {
        self.map
            .range(lo..hi)
            .take(limit as usize)
            .map(|(&k, v)| (k, checksum(v)))
            .collect()
    }

    /// Executes one operation and produces its reply.
    pub fn apply(&mut self, op: &KvOp) -> KvReply {
        match op {
            KvOp::Get { key } => KvReply::Value(self.get(*key)),
            KvOp::Put { key, value } => KvReply::Inserted(self.put(*key, value)),
            KvOp::Delete { key } => KvReply::Removed(self.delete(*key)),
            KvOp::Cas { key, expected, new } => KvReply::Swapped(self.cas(*key, expected, new)),
            KvOp::Scan { lo, hi, limit } => KvReply::Scan(self.scan(*lo, *hi, *limit)),
        }
    }

    /// Executes a batch in plan order with `groups` shard-groups, exactly as
    /// a [`crate::KvSession::batch`] on a server with `groups` batch tasks
    /// does. Replies are returned in submission order.
    pub fn batch(&mut self, ops: &[KvOp], groups: usize) -> Vec<KvReply> {
        let plan = plan_batch(ops, self.n_shards, groups);
        let mut replies: Vec<Option<KvReply>> = vec![None; ops.len()];
        for group in plan {
            for index in group {
                replies[index] = Some(self.apply(&ops[index]));
            }
        }
        replies
            .into_iter()
            .map(|r| r.expect("plan covers every op"))
            .collect()
    }

    /// Full contents in ascending key order.
    pub fn dump(&self) -> Vec<(u64, Vec<u64>)> {
        self.map.iter().map(|(&k, v)| (k, v.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_semantics_match_the_documented_contract() {
        let mut s = RefStore::new(4);
        assert!(s.is_empty());
        assert!(s.put(1, &[10]));
        assert!(!s.put(1, &[11]));
        assert_eq!(s.get(1), Some(vec![11]));
        assert!(!s.cas(1, &[10], &[12]), "stale expectation fails");
        assert!(s.cas(1, &[11], &[12]));
        assert!(!s.cas(2, &[0], &[1]), "absent key fails");
        assert!(s.delete(1));
        assert!(!s.delete(1));
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn scan_matches_store_checksums() {
        let mut s = RefStore::new(4);
        for k in [4u64, 2, 8] {
            s.put(k, &[k, k + 1]);
        }
        assert_eq!(
            s.scan(2, 8, 10),
            vec![(2, checksum(&[2, 3])), (4, checksum(&[4, 5]))]
        );
        assert_eq!(s.scan(0, 100, 1).len(), 1);
    }

    #[test]
    fn batch_reply_order_is_submission_order() {
        let mut s = RefStore::new(8);
        let ops = vec![
            KvOp::Put {
                key: 1,
                value: vec![1],
            },
            KvOp::Put {
                key: 2,
                value: vec![2],
            },
            KvOp::Get { key: 1 },
            KvOp::Get { key: 2 },
        ];
        let replies = s.batch(&ops, 4);
        assert_eq!(replies.len(), 4);
        assert_eq!(replies[0], KvReply::Inserted(true));
        assert_eq!(replies[2], KvReply::Value(Some(vec![1])));
        assert_eq!(replies[3], KvReply::Value(Some(vec![2])));
    }

    #[test]
    fn batch_plan_order_is_observable_across_groups() {
        // A Get planned into an earlier group than the Put that creates the
        // key must miss — under any group count the plan order is the defined
        // semantics, and it must be deterministic.
        let mut a = RefStore::new(8);
        let mut b = RefStore::new(8);
        let ops = vec![
            KvOp::Put {
                key: 3,
                value: vec![30],
            },
            KvOp::Get { key: 5 },
            KvOp::Put {
                key: 5,
                value: vec![50],
            },
        ];
        let r1 = a.batch(&ops, 4);
        let r2 = b.batch(&ops, 4);
        assert_eq!(r1, r2, "plan order must be deterministic");
        assert_eq!(a.dump(), b.dump());
    }
}
