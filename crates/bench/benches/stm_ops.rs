//! Criterion micro-benchmarks of the core runtime operations: the cost of the
//! SwissTM read/write/commit path, the TLSTM task-dispatch overhead, and the
//! red-black-tree operations the macro-benchmarks are built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use swisstm::SwisstmRuntime;
use tlstm::{task, TaskCtx, TlstmRuntime, TxnSpec};
use txcollections::TxRbTree;
use txmem::{TxConfig, TxMem};

fn bench_swisstm_read_txn(c: &mut Criterion) {
    let runtime = SwisstmRuntime::new(TxConfig::default());
    let block = runtime.heap().alloc(1024).unwrap();
    for i in 0..1024 {
        runtime.heap().store_committed(block.offset(i), i);
    }
    let mut thread = runtime.register_thread();
    let mut group = c.benchmark_group("swisstm");
    for reads in [8u64, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("read_only_txn", reads),
            &reads,
            |b, &reads| {
                b.iter(|| {
                    thread.atomic(|tx| {
                        let mut sum = 0u64;
                        for i in 0..reads {
                            sum = sum.wrapping_add(tx.read(block.offset(i))?);
                        }
                        Ok(sum)
                    })
                })
            },
        );
    }
    group.bench_function("write_txn_8", |b| {
        b.iter(|| {
            thread.atomic(|tx| {
                for i in 0..8 {
                    tx.write(block.offset(i), i)?;
                }
                Ok(())
            })
        })
    });
    group.finish();
}

fn bench_tlstm_dispatch(c: &mut Criterion) {
    let runtime = TlstmRuntime::new(TxConfig::default());
    let block = runtime.heap().alloc(1024).unwrap();
    let mut group = c.benchmark_group("tlstm");
    for tasks in [1usize, 2, 4] {
        let uthread = runtime.register_uthread(tasks.max(1));
        group.bench_with_input(
            BenchmarkId::new("read_txn_64_reads", tasks),
            &tasks,
            |b, &tasks| {
                b.iter(|| {
                    let per_task = 64 / tasks as u64;
                    let bodies = (0..tasks)
                        .map(|t| {
                            let lo = t as u64 * per_task;
                            task(move |ctx: &mut TaskCtx<'_>| {
                                let mut sum = 0u64;
                                for i in lo..lo + per_task {
                                    sum = sum.wrapping_add(ctx.read(block.offset(i))?);
                                }
                                let _ = sum;
                                Ok(())
                            })
                        })
                        .collect();
                    uthread.execute(vec![TxnSpec::new(bodies)]);
                })
            },
        );
    }
    group.finish();
}

fn bench_rbtree(c: &mut Criterion) {
    let runtime = SwisstmRuntime::new(TxConfig::default());
    let tree = {
        let mut mem = runtime.direct();
        let tree = TxRbTree::create(&mut mem).unwrap();
        for i in 0..4096u64 {
            tree.insert(&mut mem, i * 2, i).unwrap();
        }
        tree
    };
    let mut thread = runtime.register_thread();
    let mut group = c.benchmark_group("rbtree");
    group.bench_function("lookup_txn_16", |b| {
        let mut key = 0u64;
        b.iter(|| {
            key = key.wrapping_add(97);
            thread.atomic(|tx| {
                for i in 0..16u64 {
                    let _ = tree.get(tx, (key + i * 31) % 8192)?;
                }
                Ok(())
            })
        })
    });
    group.bench_function("insert_remove_txn", |b| {
        let mut key = 100_000u64;
        b.iter(|| {
            key += 1;
            thread.atomic(|tx| {
                tree.insert(tx, key, key)?;
                tree.remove(tx, key)?;
                Ok(())
            })
        })
    });
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_swisstm_read_txn, bench_tlstm_dispatch, bench_rbtree
}
criterion_main!(benches);
