//! Ablation micro-benchmarks for the design choices called out in DESIGN.md:
//! the cost of intra-thread validation as the task-read-log grows, the impact
//! of speculative depth on a fixed read-only transaction, and the penalty of
//! intra-thread write/write conflicts (tasks of one transaction writing the
//! same words).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use tlstm::{task, TaskCtx, TlstmRuntime, TxnSpec};
use txmem::{TxConfig, TxMem};

/// Speculative-depth sweep on a fixed read-only transaction (64 reads split
/// across as many tasks as the depth allows).
fn bench_spec_depth(c: &mut Criterion) {
    let runtime = TlstmRuntime::new(TxConfig::default());
    let block = runtime.heap().alloc(256).unwrap();
    let mut group = c.benchmark_group("ablation_spec_depth");
    for depth in [1usize, 2, 3, 4, 8] {
        let uthread = runtime.register_uthread(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let per_task = 64 / depth as u64;
                let bodies = (0..depth)
                    .map(|t| {
                        let lo = t as u64 * per_task;
                        task(move |ctx: &mut TaskCtx<'_>| {
                            for i in lo..lo + per_task {
                                let _ = ctx.read(block.offset(i))?;
                            }
                            Ok(())
                        })
                    })
                    .collect();
                uthread.execute(vec![TxnSpec::new(bodies)]);
            })
        });
    }
    group.finish();
}

/// Pipelined speculative reads from past tasks: each task reads the word the
/// previous task wrote, exercising the redo-log chain and the task-read-log
/// validation path.
fn bench_chained_speculative_reads(c: &mut Criterion) {
    let runtime = TlstmRuntime::new(TxConfig::default());
    let word = runtime.heap().alloc(1).unwrap();
    let mut group = c.benchmark_group("ablation_chained_reads");
    for tasks in [2usize, 4, 8] {
        let uthread = runtime.register_uthread(tasks);
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, &tasks| {
            b.iter(|| {
                let bodies = (0..tasks)
                    .map(|_| {
                        task(move |ctx: &mut TaskCtx<'_>| {
                            let v = ctx.read(word)?;
                            ctx.write(word, v + 1)?;
                            Ok(())
                        })
                    })
                    .collect();
                uthread.execute(vec![TxnSpec::new(bodies)]);
            })
        });
    }
    group.finish();
}

/// Write/write intra-thread conflict penalty: every task of the transaction
/// writes the same small set of words, which the paper identifies as the
/// pathological case for TLSTM (the transaction serialises).
fn bench_intra_thread_waw(c: &mut Criterion) {
    let runtime = TlstmRuntime::new(TxConfig::default());
    let block = runtime.heap().alloc(8).unwrap();
    let mut group = c.benchmark_group("ablation_intra_waw");
    for tasks in [1usize, 3] {
        let uthread = runtime.register_uthread(tasks.max(3));
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |b, &tasks| {
            b.iter(|| {
                let bodies = (0..tasks)
                    .map(|_| {
                        task(move |ctx: &mut TaskCtx<'_>| {
                            for i in 0..8u64 {
                                let v = ctx.read(block.offset(i))?;
                                ctx.write(block.offset(i), v + 1)?;
                            }
                            Ok(())
                        })
                    })
                    .collect();
                uthread.execute(vec![TxnSpec::new(bodies)]);
            })
        });
    }
    group.finish();
}

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = configured();
    targets = bench_spec_depth, bench_chained_speculative_reads, bench_intra_thread_waw
}
criterion_main!(benches);
