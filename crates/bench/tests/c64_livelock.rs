//! Regression test for the TLSTM `c64` single-core livelock collapse.
//!
//! 64 committers × 4 speculative tasks used to livelock on intra-batch
//! conflicts when the host has a single core: whole batches re-executed over
//! and over (hundreds of ops/s, ~10⁵ aborts) while SwissTM pushed thousands.
//! The abort-storm detector in `tlstm::UThread::execute` now falls back to
//! sequential plan execution after consecutive stormy batches, which must
//! keep TLSTM within an order of magnitude of SwissTM on one bounded core.
//!
//! On multi-core hosts the detector is disarmed (speculation is never
//! degraded there), so the test re-executes itself pinned to CPU 0 with
//! `taskset`; `available_parallelism` honours the affinity mask, so the
//! child process arms the detector exactly as a real single-core host would.

use std::time::Duration;

use tlstm::TlstmRuntime;
use tlstm_workloads::harness::WorkloadConfig;
use tlstm_workloads::kv::{self, FsyncPolicy, KvDurability, KvMix, KvParams};

/// Guard so the re-executed child does not recurse.
const PINNED_ENV: &str = "TLSTM_C64_PINNED";

fn c64_params() -> KvParams {
    KvParams {
        // Smaller key space than the bench row keeps population quick; the
        // collapse is driven by committers × tasks, not by table size.
        records: 4 * 1024,
        tasks_per_txn: 4,
        threads: 64,
        durable: Some(KvDurability {
            fsync: FsyncPolicy::None,
        }),
        ..KvParams::mix(KvMix::A)
    }
}

#[test]
fn c64_durable_tlstm_within_order_of_magnitude_of_swisstm() {
    if txmem::pause::multi_core() && std::env::var_os(PINNED_ENV).is_none() {
        // Re-exec this very test bounded to one CPU. Skip (loudly) when no
        // taskset is available rather than fail on exotic CI hosts.
        let exe = std::env::current_exe().expect("test binary path");
        let status = match std::process::Command::new("taskset")
            .args(["-c", "0"])
            .arg(&exe)
            .args([
                "--exact",
                "c64_durable_tlstm_within_order_of_magnitude_of_swisstm",
            ])
            .env(PINNED_ENV, "1")
            .status()
        {
            Ok(status) => status,
            Err(err) => {
                eprintln!("skipping single-core c64 regression: taskset unavailable ({err})");
                return;
            }
        };
        assert!(status.success(), "pinned single-core c64 regression failed");
        return;
    }

    let params = c64_params();
    let config = WorkloadConfig {
        duration: Duration::from_millis(1000),
        repetitions: 1,
        seed: 0xC64,
    };
    let swisstm = kv::measure::<swisstm::SwisstmRuntime>(&params, &config);
    let tlstm = kv::measure::<TlstmRuntime>(&params, &config);
    let swisstm_ops = swisstm.throughput.ops_per_sec();
    let tlstm_ops = tlstm.throughput.ops_per_sec();
    eprintln!("c64 single-core: swisstm {swisstm_ops:.0} ops/s, tlstm {tlstm_ops:.0} ops/s");
    assert!(swisstm_ops > 0.0, "swisstm must make progress");
    assert!(
        tlstm_ops * 10.0 >= swisstm_ops,
        "tlstm c64 collapsed on a single core: {tlstm_ops:.0} ops/s vs swisstm {swisstm_ops:.0} ops/s"
    );
}
