//! End-to-end test of the `tmbench` measurement pipeline: a (tiny) real run
//! of the full default matrix must produce a schema-valid report covering
//! both runtimes and at least three workloads, round-trip through JSON, and
//! pass the regression gate against itself.

use std::time::Duration;

use tlstm_bench::report::{diff_reports, BenchReport};
use tlstm_bench::scenarios::{build_scenarios, run_matrix, MatrixSelection};
use tlstm_testutil::with_default_watchdog;
use tlstm_workloads::WorkloadConfig;

#[test]
fn quick_matrix_produces_a_valid_gateable_report() {
    let report = with_default_watchdog(|| {
        let config = WorkloadConfig {
            duration: Duration::from_millis(10),
            repetitions: 1,
            seed: 0xC0FFEE,
        };
        let scenarios = build_scenarios(&MatrixSelection::default());
        run_matrix(&scenarios, &config, true, |_, _, _| {})
    });

    // Coverage: both runtimes, at least three workload families, and the kv
    // serving scenarios on both runtimes (incl. the task-split TLSTM mode).
    assert!(report.distinct_runtimes() >= 2, "must cover both runtimes");
    assert!(
        report.distinct_workloads() >= 3,
        "must cover at least three workloads, got {}",
        report.distinct_workloads()
    );
    for name in ["kv-a/swisstm/t1/k1", "kv-a/tlstm/t1/k4"] {
        assert!(
            report.scenarios.iter().any(|s| s.name == name),
            "default matrix must include {name}"
        );
    }

    // Every scenario made progress and accounted for its transactions.
    for s in &report.scenarios {
        assert!(s.ops > 0, "{} made no progress", s.name);
        assert!(s.ops_per_sec > 0.0, "{} reports zero throughput", s.name);
        assert!(s.latency.samples > 0, "{} recorded no latencies", s.name);
        assert!(
            s.latency.p99_ns >= s.latency.p50_ns,
            "{} quantiles inverted",
            s.name
        );
        assert!(s.stats.tx_commits > 0, "{} committed nothing", s.name);
    }

    // The serialised report is schema-valid and round-trips losslessly.
    let text = report.to_json_string();
    assert!(
        BenchReport::validate(&text).is_empty(),
        "self-produced report fails --check-schema: {:?}",
        BenchReport::validate(&text)
    );
    let parsed = BenchReport::parse(&text).unwrap();
    assert_eq!(parsed, report);

    // The gate passes against itself and catches a doctored regression.
    assert!(!diff_reports(&report, &parsed, 10.0).has_regressions());
    let mut doctored = report.clone();
    doctored.scenarios[0].ops_per_sec *= 0.5;
    assert!(diff_reports(&report, &doctored, 10.0).has_regressions());
}
