//! The versioned `tmbench` benchmark report: schema, (de)serialisation,
//! validation, and the baseline-diff regression gate.
//!
//! A [`BenchReport`] is what one `tmbench` invocation produces: one
//! [`ScenarioResult`] per (workload, runtime, threads, tasks) combination,
//! each carrying throughput, a per-transaction latency summary and the full
//! abort-cause breakdown from the runtime's sharded statistics counters.
//! Reports serialise to deterministic pretty-printed JSON
//! (`BENCH_results.json`), parse back losslessly, and can be diffed against a
//! baseline report with a regression threshold — the CI perf-smoke gate.
//!
//! The schema is versioned via [`SCHEMA_VERSION`]; [`BenchReport::validate`]
//! (exposed as `tmbench --check-schema`) rejects reports whose version or
//! shape has drifted, so the format cannot change silently.

use std::fmt;

use txmem::StatsSnapshot;

use crate::json::{Json, JsonError};

/// Version of the `BENCH_results.json` schema produced by this build.
///
/// Bump on any incompatible change to the report shape, and teach
/// [`BenchReport::parse`] about the old versions you still want to read.
pub const SCHEMA_VERSION: u64 = 2;

/// Summary of a per-transaction latency distribution, in nanoseconds.
///
/// Quantiles come from a log₂-bucketed histogram, so they are upper bounds
/// with one-power-of-two resolution (see
/// `tlstm_workloads::harness::LatencyHistogram`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Mean latency.
    pub mean_ns: f64,
    /// Median (p50) latency.
    pub p50_ns: u64,
    /// 99th-percentile latency.
    pub p99_ns: u64,
    /// Largest observed latency.
    pub max_ns: u64,
    /// Number of samples the summary is built from.
    pub samples: u64,
}

impl LatencySummary {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("mean_ns", Json::Num(self.mean_ns)),
            ("p50_ns", Json::Num(self.p50_ns as f64)),
            ("p99_ns", Json::Num(self.p99_ns as f64)),
            ("max_ns", Json::Num(self.max_ns as f64)),
            ("samples", Json::Num(self.samples as f64)),
        ])
    }

    fn from_json(value: &Json, errors: &mut Vec<String>, context: &str) -> LatencySummary {
        let mut field = |name: &str| -> f64 {
            match value.get(name).and_then(Json::as_f64) {
                Some(v) if v >= 0.0 => v,
                _ => {
                    errors.push(format!(
                        "{context}: missing or invalid latency field '{name}'"
                    ));
                    0.0
                }
            }
        };
        LatencySummary {
            mean_ns: field("mean_ns"),
            p50_ns: field("p50_ns") as u64,
            p99_ns: field("p99_ns") as u64,
            max_ns: field("max_ns") as u64,
            samples: field("samples") as u64,
        }
    }
}

/// WAL pipeline summary for a durable scenario, from the `txobs` WAL metrics
/// delta captured around the measured window.
///
/// Latency quantiles come from the same log₂-bucketed histograms as
/// [`LatencySummary`], so they are one-power-of-two upper bounds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WalSummary {
    /// Records enqueued to the WAL during the window.
    pub enqueued: u64,
    /// Batches the append stage wrote.
    pub batches: u64,
    /// Mean records per append batch (0 when no batches were written).
    pub mean_batch_records: f64,
    /// Total bytes written by the append stage.
    pub batch_bytes: u64,
    /// fsync calls issued by the sync stage.
    pub fsyncs: u64,
    /// Median append (write_batch) latency.
    pub append_p50_ns: u64,
    /// 99th-percentile append latency.
    pub append_p99_ns: u64,
    /// Median fsync latency.
    pub fsync_p50_ns: u64,
    /// 99th-percentile fsync latency.
    pub fsync_p99_ns: u64,
    /// Storage-layer retries performed by the append stage.
    pub retries: u64,
    /// Storage faults that latched the writer into a failed state.
    pub faults: u64,
    /// Segment rotations completed.
    pub rotations: u64,
}

impl WalSummary {
    /// Builds the summary from a `txobs` WAL metrics delta (the snapshot
    /// difference captured around the measured window). All derived values
    /// come from the snapshot's own zero-guarded helpers, so an empty window
    /// summarises to zeros, never NaN.
    pub fn from_snapshot(wal: &txobs::metrics::WalSnapshot) -> WalSummary {
        WalSummary {
            enqueued: wal.enqueued,
            batches: wal.batches,
            mean_batch_records: wal.mean_batch_records(),
            batch_bytes: wal.batch_bytes,
            fsyncs: wal.fsyncs,
            append_p50_ns: wal.append_ns.quantile_ns(0.50),
            append_p99_ns: wal.append_ns.quantile_ns(0.99),
            fsync_p50_ns: wal.fsync_ns.quantile_ns(0.50),
            fsync_p99_ns: wal.fsync_ns.quantile_ns(0.99),
            retries: wal.retries,
            faults: wal.faults,
            rotations: wal.rotations,
        }
    }

    const FIELDS: [&'static str; 12] = [
        "enqueued",
        "batches",
        "mean_batch_records",
        "batch_bytes",
        "fsyncs",
        "append_p50_ns",
        "append_p99_ns",
        "fsync_p50_ns",
        "fsync_p99_ns",
        "retries",
        "faults",
        "rotations",
    ];

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("enqueued", Json::Num(self.enqueued as f64)),
            ("batches", Json::Num(self.batches as f64)),
            ("mean_batch_records", Json::Num(self.mean_batch_records)),
            ("batch_bytes", Json::Num(self.batch_bytes as f64)),
            ("fsyncs", Json::Num(self.fsyncs as f64)),
            ("append_p50_ns", Json::Num(self.append_p50_ns as f64)),
            ("append_p99_ns", Json::Num(self.append_p99_ns as f64)),
            ("fsync_p50_ns", Json::Num(self.fsync_p50_ns as f64)),
            ("fsync_p99_ns", Json::Num(self.fsync_p99_ns as f64)),
            ("retries", Json::Num(self.retries as f64)),
            ("faults", Json::Num(self.faults as f64)),
            ("rotations", Json::Num(self.rotations as f64)),
        ])
    }

    fn from_json(value: &Json, errors: &mut Vec<String>, context: &str) -> WalSummary {
        if let Some(pairs) = value.as_object() {
            for (key, _) in pairs {
                if !Self::FIELDS.contains(&key.as_str()) {
                    errors.push(format!("{context}: unknown wal field '{key}'"));
                }
            }
        }
        let mut field = |name: &str| -> f64 {
            match value.get(name).and_then(Json::as_f64) {
                Some(v) if v >= 0.0 => v,
                _ => {
                    errors.push(format!("{context}: missing or invalid wal field '{name}'"));
                    0.0
                }
            }
        };
        WalSummary {
            enqueued: field("enqueued") as u64,
            batches: field("batches") as u64,
            mean_batch_records: field("mean_batch_records"),
            batch_bytes: field("batch_bytes") as u64,
            fsyncs: field("fsyncs") as u64,
            append_p50_ns: field("append_p50_ns") as u64,
            append_p99_ns: field("append_p99_ns") as u64,
            fsync_p50_ns: field("fsync_p50_ns") as u64,
            fsync_p99_ns: field("fsync_p99_ns") as u64,
            retries: field("retries") as u64,
            faults: field("faults") as u64,
            rotations: field("rotations") as u64,
        }
    }
}

/// Network front-end summary for a `net-kv` scenario, from the `txobs`
/// network metrics delta captured around the measured window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetSummary {
    /// Request frames the server decoded.
    pub requests: u64,
    /// Reply frames the server wrote.
    pub replies: u64,
    /// Payload bytes received.
    pub bytes_in: u64,
    /// Payload bytes sent.
    pub bytes_out: u64,
    /// Coalesced store batches executed (each is one poll-loop drain of
    /// every readable connection, one STM commit, one WAL ticket).
    pub coalesced_batches: u64,
    /// Mean requests per coalesced batch (0 when no batches ran) — the
    /// server-side coalescing factor the `-cN` connection sweep reads off.
    pub mean_coalesced_requests: f64,
    /// Frame- and payload-level protocol errors the server contained.
    pub protocol_errors: u64,
}

impl NetSummary {
    /// Builds the summary from a `txobs` network metrics delta. The mean
    /// comes from the snapshot's zero-guarded helper, so an empty window
    /// summarises to zeros, never NaN.
    pub fn from_snapshot(net: &txobs::metrics::NetSnapshot) -> NetSummary {
        NetSummary {
            requests: net.requests,
            replies: net.replies,
            bytes_in: net.bytes_in,
            bytes_out: net.bytes_out,
            coalesced_batches: net.coalesced_batches,
            mean_coalesced_requests: net.mean_coalesced_requests(),
            protocol_errors: net.protocol_errors,
        }
    }

    const FIELDS: [&'static str; 7] = [
        "requests",
        "replies",
        "bytes_in",
        "bytes_out",
        "coalesced_batches",
        "mean_coalesced_requests",
        "protocol_errors",
    ];

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("requests", Json::Num(self.requests as f64)),
            ("replies", Json::Num(self.replies as f64)),
            ("bytes_in", Json::Num(self.bytes_in as f64)),
            ("bytes_out", Json::Num(self.bytes_out as f64)),
            (
                "coalesced_batches",
                Json::Num(self.coalesced_batches as f64),
            ),
            (
                "mean_coalesced_requests",
                Json::Num(self.mean_coalesced_requests),
            ),
            ("protocol_errors", Json::Num(self.protocol_errors as f64)),
        ])
    }

    fn from_json(value: &Json, errors: &mut Vec<String>, context: &str) -> NetSummary {
        if let Some(pairs) = value.as_object() {
            for (key, _) in pairs {
                if !Self::FIELDS.contains(&key.as_str()) {
                    errors.push(format!("{context}: unknown net field '{key}'"));
                }
            }
        }
        let mut field = |name: &str| -> f64 {
            match value.get(name).and_then(Json::as_f64) {
                Some(v) if v >= 0.0 => v,
                _ => {
                    errors.push(format!("{context}: missing or invalid net field '{name}'"));
                    0.0
                }
            }
        };
        NetSummary {
            requests: field("requests") as u64,
            replies: field("replies") as u64,
            bytes_in: field("bytes_in") as u64,
            bytes_out: field("bytes_out") as u64,
            coalesced_batches: field("coalesced_batches") as u64,
            mean_coalesced_requests: field("mean_coalesced_requests"),
            protocol_errors: field("protocol_errors") as u64,
        }
    }
}

/// The result of one benchmark scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Unique scenario identifier, e.g. `rbtree-n16/tlstm/t1/k2`.
    pub name: String,
    /// Workload family (`rbtree`, `vacation-low`, `vacation-high`,
    /// `stmbench7-r90`, ...).
    pub workload: String,
    /// Runtime under test (`swisstm` or `tlstm`).
    pub runtime: String,
    /// Number of user-threads driving the workload.
    pub threads: usize,
    /// Tasks each user-transaction is split into (1 under SwissTM).
    pub tasks_per_txn: usize,
    /// Committed operations over the measured duration.
    pub ops: u64,
    /// Measured wall-clock duration in milliseconds.
    pub elapsed_ms: f64,
    /// Throughput in operations per second.
    pub ops_per_sec: f64,
    /// Per-user-transaction latency summary.
    pub latency: LatencySummary,
    /// Full runtime statistics for the run: commits, aborts by cause,
    /// validations, contention-manager decisions.
    pub stats: StatsSnapshot,
    /// WAL pipeline summary; present only for durable scenarios.
    pub wal: Option<WalSummary>,
    /// Network front-end summary; present only for `net-kv` scenarios.
    pub net: Option<NetSummary>,
}

impl ScenarioResult {
    /// Abort rates in aborts per second, derived from `stats` and
    /// `elapsed_ms`: the total first, then the per-cause breakdown.
    ///
    /// Rates are 0 when the measured window is empty.
    pub fn abort_rates(&self) -> [(&'static str, f64); 9] {
        let secs = self.elapsed_ms / 1000.0;
        let rate = |n: u64| if secs > 0.0 { n as f64 / secs } else { 0.0 };
        [
            ("total", rate(self.stats.tx_aborts)),
            ("read_validation", rate(self.stats.aborts_read_validation)),
            ("inter_ww", rate(self.stats.aborts_inter_ww)),
            ("intra_war", rate(self.stats.aborts_intra_war)),
            ("intra_waw", rate(self.stats.aborts_intra_waw)),
            ("tx_signal", rate(self.stats.aborts_tx_signal)),
            ("task_signal", rate(self.stats.aborts_task_signal)),
            ("user_retry", rate(self.stats.aborts_user_retry)),
            ("oom", rate(self.stats.aborts_oom)),
        ]
    }

    fn to_json(&self) -> Json {
        let mut json = Json::obj(vec![
            ("name", Json::Str(self.name.clone())),
            ("workload", Json::Str(self.workload.clone())),
            ("runtime", Json::Str(self.runtime.clone())),
            ("threads", Json::Num(self.threads as f64)),
            ("tasks_per_txn", Json::Num(self.tasks_per_txn as f64)),
            ("ops", Json::Num(self.ops as f64)),
            ("elapsed_ms", Json::Num(self.elapsed_ms)),
            ("ops_per_sec", Json::Num(self.ops_per_sec)),
            ("txn_latency", self.latency.to_json()),
            (
                "stats",
                Json::Obj(
                    self.stats
                        .fields()
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), Json::Num(v as f64)))
                        .collect(),
                ),
            ),
            (
                "abort_rates_per_sec",
                Json::Obj(
                    self.abort_rates()
                        .into_iter()
                        .map(|(k, v)| (k.to_string(), Json::Num(v)))
                        .collect(),
                ),
            ),
        ]);
        if let (Json::Obj(pairs), Some(wal)) = (&mut json, self.wal) {
            pairs.push(("wal".to_string(), wal.to_json()));
        }
        if let (Json::Obj(pairs), Some(net)) = (&mut json, self.net) {
            pairs.push(("net".to_string(), net.to_json()));
        }
        json
    }

    fn from_json(value: &Json, index: usize, errors: &mut Vec<String>) -> ScenarioResult {
        let context = format!("scenarios[{index}]");
        let str_field = |name: &str, errors: &mut Vec<String>| -> String {
            match value.get(name).and_then(Json::as_str) {
                Some(s) if !s.is_empty() => s.to_string(),
                _ => {
                    errors.push(format!("{context}: missing or empty string field '{name}'"));
                    String::new()
                }
            }
        };
        let num_field = |name: &str, errors: &mut Vec<String>| -> f64 {
            match value.get(name).and_then(Json::as_f64) {
                Some(v) if v >= 0.0 => v,
                _ => {
                    errors.push(format!(
                        "{context}: missing or invalid number field '{name}'"
                    ));
                    0.0
                }
            }
        };
        let name = str_field("name", errors);
        let workload = str_field("workload", errors);
        let runtime = str_field("runtime", errors);
        let threads = num_field("threads", errors) as usize;
        let tasks_per_txn = num_field("tasks_per_txn", errors) as usize;
        let ops = num_field("ops", errors) as u64;
        let elapsed_ms = num_field("elapsed_ms", errors);
        let ops_per_sec = num_field("ops_per_sec", errors);
        let latency = match value.get("txn_latency") {
            Some(obj) if obj.as_object().is_some() => {
                LatencySummary::from_json(obj, errors, &context)
            }
            _ => {
                errors.push(format!("{context}: missing object field 'txn_latency'"));
                LatencySummary {
                    mean_ns: 0.0,
                    p50_ns: 0,
                    p99_ns: 0,
                    max_ns: 0,
                    samples: 0,
                }
            }
        };
        let mut stats = StatsSnapshot::default();
        match value.get("stats").and_then(Json::as_object) {
            None => errors.push(format!("{context}: missing object field 'stats'")),
            Some(pairs) => {
                let mut seen = std::collections::HashSet::new();
                for (key, v) in pairs {
                    match v.as_u64() {
                        None => errors.push(format!(
                            "{context}: stats counter '{key}' is not a non-negative integer"
                        )),
                        Some(n) => {
                            if stats.set_field(key, n) {
                                seen.insert(key.as_str());
                            } else {
                                errors.push(format!("{context}: unknown stats counter '{key}'"));
                            }
                        }
                    }
                }
                // Every known counter must be present: a build silently
                // dropping one is exactly the drift --check-schema exists to
                // catch.
                for (name, _) in StatsSnapshot::default().fields() {
                    if !seen.contains(name) {
                        errors.push(format!("{context}: missing stats counter '{name}'"));
                    }
                }
            }
        }
        // `abort_rates_per_sec` is derived from `stats` and `elapsed_ms`, so
        // it is validated for shape (presence, known keys, numeric values)
        // rather than stored: the struct recomputes it on demand.
        match value.get("abort_rates_per_sec").and_then(Json::as_object) {
            None => errors.push(format!(
                "{context}: missing object field 'abort_rates_per_sec'"
            )),
            Some(pairs) => {
                let known = [
                    "total",
                    "read_validation",
                    "inter_ww",
                    "intra_war",
                    "intra_waw",
                    "tx_signal",
                    "task_signal",
                    "user_retry",
                    "oom",
                ];
                for (key, v) in pairs {
                    if !known.contains(&key.as_str()) {
                        errors.push(format!("{context}: unknown abort rate '{key}'"));
                    } else if v.as_f64().filter(|r| *r >= 0.0).is_none() {
                        errors.push(format!(
                            "{context}: abort rate '{key}' is not a non-negative number"
                        ));
                    }
                }
                for name in known {
                    if !pairs.iter().any(|(k, _)| k == name) {
                        errors.push(format!("{context}: missing abort rate '{name}'"));
                    }
                }
            }
        }
        let wal = value
            .get("wal")
            .map(|obj| WalSummary::from_json(obj, errors, &context));
        let net = value
            .get("net")
            .map(|obj| NetSummary::from_json(obj, errors, &context));
        ScenarioResult {
            name,
            workload,
            runtime,
            threads,
            tasks_per_txn,
            ops,
            elapsed_ms,
            ops_per_sec,
            latency,
            stats,
            wal,
            net,
        }
    }
}

/// A full `tmbench` report: run-level metadata plus one result per scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`] for reports produced by this build).
    pub schema_version: u64,
    /// `true` when produced by a `--quick` run (short durations; numbers are
    /// smoke-level, not publication-level).
    pub quick: bool,
    /// Measured duration per scenario data point, in milliseconds.
    pub duration_ms: u64,
    /// Repetitions averaged per scenario.
    pub repetitions: u32,
    /// The scenario results, in execution order.
    pub scenarios: Vec<ScenarioResult>,
}

impl BenchReport {
    /// Serialises the report as deterministic pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        Json::obj(vec![
            ("schema_version", Json::Num(self.schema_version as f64)),
            ("tool", Json::Str("tmbench".to_string())),
            ("quick", Json::Bool(self.quick)),
            ("duration_ms", Json::Num(self.duration_ms as f64)),
            ("repetitions", Json::Num(f64::from(self.repetitions))),
            (
                "scenarios",
                Json::Arr(self.scenarios.iter().map(ScenarioResult::to_json).collect()),
            ),
        ])
        .to_pretty_string()
    }

    /// Parses and validates a serialised report.
    ///
    /// # Errors
    ///
    /// Returns every problem found (malformed JSON, wrong schema version,
    /// missing or mistyped fields, unknown stats counters) as a list of
    /// human-readable messages.
    pub fn parse(text: &str) -> Result<BenchReport, Vec<String>> {
        let value = Json::parse(text).map_err(|e: JsonError| vec![e.to_string()])?;
        let mut errors = Vec::new();
        let schema_version = match value.get("schema_version").and_then(Json::as_u64) {
            Some(v) => {
                if v != SCHEMA_VERSION {
                    errors.push(format!(
                        "unsupported schema_version {v} (this build reads {SCHEMA_VERSION})"
                    ));
                }
                v
            }
            None => {
                errors.push("missing numeric field 'schema_version'".to_string());
                0
            }
        };
        if value.get("tool").and_then(Json::as_str) != Some("tmbench") {
            errors.push("missing or unexpected 'tool' field (want \"tmbench\")".to_string());
        }
        let quick = value
            .get("quick")
            .and_then(Json::as_bool)
            .unwrap_or_else(|| {
                errors.push("missing boolean field 'quick'".to_string());
                false
            });
        let duration_ms = value
            .get("duration_ms")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| {
                errors.push("missing numeric field 'duration_ms'".to_string());
                0
            });
        let repetitions = value
            .get("repetitions")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| {
                errors.push("missing numeric field 'repetitions'".to_string());
                0
            }) as u32;
        let scenarios = match value.get("scenarios").and_then(Json::as_array) {
            None => {
                errors.push("missing array field 'scenarios'".to_string());
                Vec::new()
            }
            Some(items) => {
                if items.is_empty() {
                    errors.push("'scenarios' must not be empty".to_string());
                }
                items
                    .iter()
                    .enumerate()
                    .map(|(i, item)| ScenarioResult::from_json(item, i, &mut errors))
                    .collect()
            }
        };
        let mut names = std::collections::HashSet::new();
        for s in &scenarios {
            if !s.name.is_empty() && !names.insert(s.name.clone()) {
                errors.push(format!("duplicate scenario name '{}'", s.name));
            }
        }
        if errors.is_empty() {
            Ok(BenchReport {
                schema_version,
                quick,
                duration_ms,
                repetitions,
                scenarios,
            })
        } else {
            Err(errors)
        }
    }

    /// Validates a serialised report, returning the problems found (empty
    /// means valid). This is what `tmbench --check-schema` runs.
    pub fn validate(text: &str) -> Vec<String> {
        match Self::parse(text) {
            Ok(_) => Vec::new(),
            Err(errors) => errors,
        }
    }

    /// Number of distinct workloads covered by the report.
    pub fn distinct_workloads(&self) -> usize {
        let set: std::collections::HashSet<&str> =
            self.scenarios.iter().map(|s| s.workload.as_str()).collect();
        set.len()
    }

    /// Number of distinct runtimes covered by the report.
    pub fn distinct_runtimes(&self) -> usize {
        let set: std::collections::HashSet<&str> =
            self.scenarios.iter().map(|s| s.runtime.as_str()).collect();
        set.len()
    }
}

/// Comparison of one scenario between a baseline and a current report.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDiff {
    /// Scenario name (present in both reports).
    pub name: String,
    /// Baseline throughput, ops/s.
    pub baseline_ops_per_sec: f64,
    /// Current throughput, ops/s.
    pub current_ops_per_sec: f64,
    /// Relative throughput change in percent (negative = slower).
    pub delta_pct: f64,
    /// `true` if the slowdown exceeds the gate threshold.
    pub regressed: bool,
}

/// Outcome of diffing a current report against a baseline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiffOutcome {
    /// Per-scenario comparisons for scenarios present in both reports.
    pub diffs: Vec<ScenarioDiff>,
    /// Scenario names present in the baseline but missing from the current
    /// report (treated as regressions: coverage must not silently shrink).
    pub missing_in_current: Vec<String>,
    /// Scenario names only present in the current report (informational).
    pub added_in_current: Vec<String>,
}

impl DiffOutcome {
    /// `true` if any scenario regressed beyond the gate, or baseline coverage
    /// was lost.
    pub fn has_regressions(&self) -> bool {
        !self.missing_in_current.is_empty() || self.diffs.iter().any(|d| d.regressed)
    }

    /// The scenarios that regressed beyond the gate.
    pub fn regressions(&self) -> impl Iterator<Item = &ScenarioDiff> {
        self.diffs.iter().filter(|d| d.regressed)
    }
}

impl fmt::Display for DiffOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diffs {
            writeln!(
                f,
                "{} {:>12.0} -> {:>12.0} ops/s  {:+6.1}%{}",
                pad_name(&d.name),
                d.baseline_ops_per_sec,
                d.current_ops_per_sec,
                d.delta_pct,
                if d.regressed { "  REGRESSED" } else { "" }
            )?;
        }
        for name in &self.missing_in_current {
            writeln!(f, "{} MISSING from current report", pad_name(name))?;
        }
        for name in &self.added_in_current {
            writeln!(f, "{} new in current report", pad_name(name))?;
        }
        Ok(())
    }
}

fn pad_name(name: &str) -> String {
    format!("{name:<34}")
}

/// Diffs `current` against `baseline` with a regression gate of `gate_pct`
/// percent: a scenario regresses when its throughput drops by strictly more
/// than `gate_pct`% of the baseline. Scenarios are matched by name.
pub fn diff_reports(baseline: &BenchReport, current: &BenchReport, gate_pct: f64) -> DiffOutcome {
    let mut outcome = DiffOutcome::default();
    for base in &baseline.scenarios {
        match current.scenarios.iter().find(|s| s.name == base.name) {
            None => outcome.missing_in_current.push(base.name.clone()),
            Some(cur) => {
                let delta_pct = if base.ops_per_sec > 0.0 {
                    (cur.ops_per_sec - base.ops_per_sec) / base.ops_per_sec * 100.0
                } else {
                    0.0
                };
                outcome.diffs.push(ScenarioDiff {
                    name: base.name.clone(),
                    baseline_ops_per_sec: base.ops_per_sec,
                    current_ops_per_sec: cur.ops_per_sec,
                    delta_pct,
                    regressed: delta_pct < -gate_pct,
                });
            }
        }
    }
    for cur in &current.scenarios {
        if !baseline.scenarios.iter().any(|s| s.name == cur.name) {
            outcome.added_in_current.push(cur.name.clone());
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_scenario(name: &str, ops_per_sec: f64) -> ScenarioResult {
        let stats = StatsSnapshot {
            tx_commits: 1000,
            tx_aborts: 10,
            aborts_read_validation: 6,
            aborts_inter_ww: 4,
            ..Default::default()
        };
        ScenarioResult {
            name: name.to_string(),
            workload: name.split('/').next().unwrap_or("w").to_string(),
            runtime: "swisstm".to_string(),
            threads: 2,
            tasks_per_txn: 1,
            ops: 50_000,
            elapsed_ms: 300.5,
            ops_per_sec,
            latency: LatencySummary {
                mean_ns: 1234.5,
                p50_ns: 1023,
                p99_ns: 8191,
                max_ns: 123_456,
                samples: 50_000,
            },
            stats,
            wal: None,
            net: None,
        }
    }

    pub(crate) fn sample_wal_summary() -> WalSummary {
        WalSummary {
            enqueued: 50_000,
            batches: 400,
            mean_batch_records: 125.0,
            batch_bytes: 4_000_000,
            fsyncs: 380,
            append_p50_ns: 16_383,
            append_p99_ns: 131_071,
            fsync_p50_ns: 524_287,
            fsync_p99_ns: 2_097_151,
            retries: 2,
            faults: 0,
            rotations: 3,
        }
    }

    pub(crate) fn sample_report() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            quick: true,
            duration_ms: 50,
            repetitions: 1,
            scenarios: vec![
                sample_scenario("rbtree-n16/swisstm/t1/k1", 100_000.0),
                sample_scenario("rbtree-n16/tlstm/t1/k2", 120_000.0),
            ],
        }
    }

    #[test]
    fn report_roundtrips_through_json() {
        let report = sample_report();
        let text = report.to_json_string();
        let parsed = BenchReport::parse(&text).expect("roundtrip parse failed");
        assert_eq!(parsed, report);
        // Serialisation is deterministic.
        assert_eq!(parsed.to_json_string(), text);
    }

    #[test]
    fn validate_accepts_own_output_and_rejects_drift() {
        let report = sample_report();
        let good = report.to_json_string();
        assert!(BenchReport::validate(&good).is_empty());

        // Wrong schema version.
        let bad = good.replace("\"schema_version\": 2", "\"schema_version\": 999");
        assert!(BenchReport::validate(&bad)
            .iter()
            .any(|e| e.contains("schema_version")));

        // Unknown stats counter (and the known one it replaced is now also
        // reported missing).
        let bad = good.replace("\"tx_commits\"", "\"tx_commitz\"");
        let problems = BenchReport::validate(&bad);
        assert!(problems.iter().any(|e| e.contains("tx_commitz")));
        assert!(problems
            .iter()
            .any(|e| e.contains("missing stats counter 'tx_commits'")));

        // Missing latency object.
        let bad = good.replace("\"txn_latency\"", "\"latencyz\"");
        assert!(BenchReport::validate(&bad)
            .iter()
            .any(|e| e.contains("txn_latency")));

        // Missing abort-rate object, and a renamed abort-rate key (which is
        // both unknown and leaves the original missing).
        let bad = good.replace("\"abort_rates_per_sec\"", "\"abort_ratez\"");
        assert!(BenchReport::validate(&bad)
            .iter()
            .any(|e| e.contains("abort_rates_per_sec")));
        let bad = good.replace("\"read_validation\"", "\"read_validationz\"");
        let problems = BenchReport::validate(&bad);
        assert!(problems
            .iter()
            .any(|e| e.contains("unknown abort rate 'read_validationz'")));
        assert!(problems
            .iter()
            .any(|e| e.contains("missing abort rate 'read_validation'")));

        // Not JSON at all.
        assert!(!BenchReport::validate("not json").is_empty());

        // Empty scenario list.
        let empty = BenchReport {
            scenarios: Vec::new(),
            ..sample_report()
        };
        assert!(BenchReport::validate(&empty.to_json_string())
            .iter()
            .any(|e| e.contains("must not be empty")));
    }

    #[test]
    fn wal_summary_roundtrips_and_rejects_drift() {
        let mut report = sample_report();
        report.scenarios[0].name = "kv-a-durable/swisstm/t8/k1".to_string();
        report.scenarios[0].workload = "kv-a-durable".to_string();
        report.scenarios[0].wal = Some(sample_wal_summary());
        let text = report.to_json_string();
        assert!(text.contains("\"mean_batch_records\": 125"));
        let parsed = BenchReport::parse(&text).expect("wal roundtrip parse failed");
        assert_eq!(parsed, report);
        assert_eq!(parsed.to_json_string(), text);

        // A renamed wal field is both unknown and leaves the original missing.
        let bad = text.replace("\"fsync_p99_ns\"", "\"fsync_p99_nz\"");
        let problems = BenchReport::validate(&bad);
        assert!(problems
            .iter()
            .any(|e| e.contains("unknown wal field 'fsync_p99_nz'")));
        assert!(problems
            .iter()
            .any(|e| e.contains("missing or invalid wal field 'fsync_p99_ns'")));
    }

    #[test]
    fn net_summary_roundtrips_and_rejects_drift() {
        let mut report = sample_report();
        report.scenarios[0].name = "net-kv-a-durable/swisstm/t64/k1".to_string();
        report.scenarios[0].workload = "net-kv-a-durable".to_string();
        report.scenarios[0].wal = Some(sample_wal_summary());
        report.scenarios[0].net = Some(NetSummary {
            requests: 10_000,
            replies: 10_000,
            bytes_in: 1_000_000,
            bytes_out: 500_000,
            coalesced_batches: 400,
            mean_coalesced_requests: 25.0,
            protocol_errors: 0,
        });
        let text = report.to_json_string();
        assert!(text.contains("\"mean_coalesced_requests\": 25"));
        let parsed = BenchReport::parse(&text).expect("net roundtrip parse failed");
        assert_eq!(parsed, report);
        assert_eq!(parsed.to_json_string(), text);

        // A renamed net field is both unknown and leaves the original missing.
        let bad = text.replace("\"coalesced_batches\"", "\"coalesced_batchez\"");
        let problems = BenchReport::validate(&bad);
        assert!(problems
            .iter()
            .any(|e| e.contains("unknown net field 'coalesced_batchez'")));
        assert!(problems
            .iter()
            .any(|e| e.contains("missing or invalid net field 'coalesced_batches'")));
    }

    #[test]
    fn empty_window_summaries_stay_finite_and_valid() {
        // A zero-duration, zero-sample, zero-batch window must summarise to
        // zeros everywhere — never NaN or infinity, which the report's JSON
        // cannot carry and downstream tooling would choke on.
        let empty_wal = WalSummary::from_snapshot(&txobs::metrics::WalSnapshot::default());
        assert_eq!(empty_wal.mean_batch_records, 0.0);
        let empty_net = NetSummary::from_snapshot(&txobs::metrics::NetSnapshot::default());
        assert_eq!(empty_net.mean_coalesced_requests, 0.0);

        let mut report = sample_report();
        report.scenarios.truncate(1);
        let s = &mut report.scenarios[0];
        s.name = "net-kv-a-durable/swisstm/t1/k1".to_string();
        s.workload = "net-kv-a-durable".to_string();
        s.ops = 0;
        s.elapsed_ms = 0.0;
        s.ops_per_sec = 0.0;
        s.latency = LatencySummary {
            mean_ns: 0.0,
            p50_ns: 0,
            p99_ns: 0,
            max_ns: 0,
            samples: 0,
        };
        s.stats = StatsSnapshot::default();
        s.wal = Some(empty_wal);
        s.net = Some(empty_net);
        assert!(s.abort_rates().iter().all(|(_, r)| *r == 0.0));

        let text = report.to_json_string();
        assert!(
            !text.contains("NaN") && !text.contains("inf") && !text.contains("null"),
            "empty-window report leaked a non-finite value:\n{text}"
        );
        assert!(BenchReport::validate(&text).is_empty());
        assert_eq!(
            BenchReport::parse(&text).expect("empty-window report must parse"),
            report
        );
    }

    #[test]
    fn abort_rates_divide_counts_by_elapsed_seconds() {
        let scenario = sample_scenario("rbtree-n16/swisstm/t1/k1", 100_000.0);
        let rates = scenario.abort_rates();
        let secs = scenario.elapsed_ms / 1000.0;
        assert_eq!(rates[0], ("total", 10.0 / secs));
        assert!(rates.contains(&("read_validation", 6.0 / secs)));
        assert!(rates.contains(&("inter_ww", 4.0 / secs)));
        assert!(rates.contains(&("oom", 0.0)));

        // An empty window reports zero rates rather than dividing by zero.
        let mut empty = scenario;
        empty.elapsed_ms = 0.0;
        assert!(empty.abort_rates().iter().all(|(_, r)| *r == 0.0));
    }

    #[test]
    fn duplicate_scenario_names_are_rejected() {
        let mut report = sample_report();
        let dup = report.scenarios[0].clone();
        report.scenarios.push(dup);
        assert!(BenchReport::validate(&report.to_json_string())
            .iter()
            .any(|e| e.contains("duplicate")));
    }

    #[test]
    fn gate_passes_against_itself() {
        let report = sample_report();
        let outcome = diff_reports(&report, &report, 10.0);
        assert!(!outcome.has_regressions());
        assert_eq!(outcome.diffs.len(), 2);
        assert!(outcome.missing_in_current.is_empty());
        for d in &outcome.diffs {
            assert_eq!(d.delta_pct, 0.0);
        }
    }

    #[test]
    fn gate_detects_doctored_regression() {
        let baseline = sample_report();
        let mut current = baseline.clone();
        // 50% slowdown on the first scenario: far beyond a 10% gate.
        current.scenarios[0].ops_per_sec = 50_000.0;
        let outcome = diff_reports(&baseline, &current, 10.0);
        assert!(outcome.has_regressions());
        let regressed: Vec<_> = outcome.regressions().collect();
        assert_eq!(regressed.len(), 1);
        assert_eq!(regressed[0].name, baseline.scenarios[0].name);
        assert!((regressed[0].delta_pct - -50.0).abs() < 1e-9);
    }

    #[test]
    fn gate_tolerates_slowdowns_within_threshold() {
        let baseline = sample_report();
        let mut current = baseline.clone();
        // 5% slowdown is within a 10% gate.
        current.scenarios[0].ops_per_sec = 95_000.0;
        let outcome = diff_reports(&baseline, &current, 10.0);
        assert!(!outcome.has_regressions());
        // ...but beyond a 3% gate.
        let outcome = diff_reports(&baseline, &current, 3.0);
        assert!(outcome.has_regressions());
    }

    #[test]
    fn missing_scenarios_count_as_regressions() {
        let baseline = sample_report();
        let mut current = baseline.clone();
        current.scenarios.remove(1);
        let outcome = diff_reports(&baseline, &current, 10.0);
        assert!(outcome.has_regressions());
        assert_eq!(
            outcome.missing_in_current,
            vec![baseline.scenarios[1].name.clone()]
        );
        // Extra scenarios in current are informational only.
        let outcome = diff_reports(&current, &baseline, 10.0);
        assert!(!outcome.has_regressions());
        assert_eq!(outcome.added_in_current.len(), 1);
    }

    #[test]
    fn coverage_helpers_count_distinct_axes() {
        let report = sample_report();
        assert_eq!(report.distinct_workloads(), 1);
        assert_eq!(report.distinct_runtimes(), 1);
    }
}
