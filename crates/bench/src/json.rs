//! A minimal JSON value model, serialiser and parser.
//!
//! The build environment has no access to crates.io (see the workspace
//! `vendor/` shims), so the benchmark reporter carries its own JSON layer
//! instead of depending on `serde`. It supports exactly what the
//! [`report`](crate::report) schema needs: objects (with preserved key
//! order), arrays, strings, finite numbers, booleans and `null`.

use std::fmt;

/// A JSON value.
///
/// Objects preserve insertion order so serialised reports are deterministic
/// and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (serialised without a trailing `.0` when integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an ordered list of key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object's key/value pairs, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serialises the value as pretty-printed JSON (2-space indent, trailing
    /// newline), deterministic for a given value.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with a byte offset and description on malformed
    /// input (including trailing garbage after the document).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON document"));
        }
        Ok(value)
    }
}

/// Formats a number the way the reports expect: integral values without a
/// fractional part, everything else with enough digits to round-trip.
fn format_number(n: f64) -> String {
    if !n.is_finite() {
        // The schema never produces non-finite numbers; serialise as null-ish
        // zero rather than emitting invalid JSON.
        return "0".to_string();
    }
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        let s = format!("{n}");
        debug_assert!(s.parse::<f64>().is_ok());
        s
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse error: byte offset into the input plus a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset the error was detected at.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected literal '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(&format!("unexpected character '{}'", other as char))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing on
                    // a char boundary is safe via the chars iterator).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| JsonError {
                offset: start,
                message: format!("invalid number '{text}'"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let value = Json::obj(vec![
            ("name", Json::Str("rbtree/swisstm".to_string())),
            ("ops", Json::Num(123456.0)),
            ("ratio", Json::Num(0.125)),
            ("quick", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "nested",
                Json::Arr(vec![Json::Num(1.0), Json::obj(vec![("k", Json::Num(2.0))])]),
            ),
        ]);
        let text = value.to_pretty_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, value);
    }

    #[test]
    fn escapes_and_unescapes_strings() {
        let value = Json::Str("a \"quoted\"\nline\twith \\ and ünïcode \u{1}".to_string());
        let text = value.to_pretty_string();
        assert_eq!(Json::parse(&text).unwrap(), value);
    }

    #[test]
    fn integral_numbers_have_no_fraction() {
        assert_eq!(Json::Num(42.0).to_pretty_string().trim(), "42");
        assert_eq!(Json::Num(-7.0).to_pretty_string().trim(), "-7");
        assert!(Json::Num(0.5).to_pretty_string().trim().contains('.'));
    }

    #[test]
    fn accessors_extract_typed_values() {
        let v = Json::parse(r#"{"a": 3, "b": "x", "c": [1, 2], "d": true, "e": 2.5}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("e").unwrap().as_u64(), None, "2.5 is not integral");
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, ]x",
            "{\"a\": }",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "nul",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }

    #[test]
    fn parses_whitespace_and_empty_containers() {
        let v = Json::parse(" { \"a\" : [ ] , \"b\" : { } } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 0);
        assert_eq!(v.get("b").unwrap().as_object().unwrap().len(), 0);
    }
}
