//! The `tmbench` scenario matrix: which workload × runtime × thread × task
//! combinations a run measures, and how each is driven.
//!
//! The default matrix covers every workload of the paper's evaluation —
//! the red-black-tree micro-benchmark (Figure 1a), both Vacation contention
//! levels (Figure 1b) and both STMBench7 traversal mixes (Figures 2a/2b) —
//! on every registered runtime, at the task splits the figures use. The
//! thread list is configurable so later scaling PRs can benchmark wider
//! matrices with the same tool.
//!
//! Runtimes are not enumerated in scenario code: every [`TxRuntime`] that
//! should appear in the matrix is one [`RuntimeEntry`] in
//! [`RUNTIME_REGISTRY`], and scenario construction, CLI filters and reports
//! pick it up from there.

use swisstm::SwisstmRuntime;
use tlstm::TlstmRuntime;
use tlstm_workloads::harness::RunMetrics;
use tlstm_workloads::kv::{self, FsyncPolicy, KvDurability, KvMix, KvParams};
use tlstm_workloads::net_kv::{self, NetKvParams};
use tlstm_workloads::overhead::{self, OverheadParams};
use tlstm_workloads::rbtree_bench::{self, RbTreeBenchParams};
use tlstm_workloads::stmbench7::{self, Stmbench7Params};
use tlstm_workloads::vacation::{self, VacationParams};
use tlstm_workloads::WorkloadConfig;
use txmem::{SeqRefRuntime, TxRuntime};

use crate::report::{
    BenchReport, LatencySummary, NetSummary, ScenarioResult, WalSummary, SCHEMA_VERSION,
};

/// One registered runtime: its stable name, its task-execution mode, and the
/// monomorphized entry point that measures any scenario on it.
///
/// Registering a new runtime is a single [`RuntimeEntry::of`] line in
/// [`RUNTIME_REGISTRY`] — the matrix, the `--runtimes` CLI filter and the
/// report rows all read the registry instead of matching on runtime names.
#[derive(Debug)]
pub struct RuntimeEntry {
    /// The identifier used in scenario names, reports and CLI filters.
    pub name: &'static str,
    /// Whether the runtime executes task splits speculatively. Speculative
    /// runtimes expand over each workload's figure-default task splits
    /// (the k-axis); sequential runtimes always run the k1 row.
    pub speculative: bool,
    /// The monomorphized measure function (`measure_on::<R>`): generic
    /// dispatch happens at registration, never on the hot path.
    measure_fn: fn(&ScenarioSpec, &WorkloadConfig) -> RunMetrics,
}

impl RuntimeEntry {
    /// Builds the registry entry for runtime `R`.
    pub const fn of<R: TxRuntime>() -> RuntimeEntry {
        RuntimeEntry {
            name: R::LABEL,
            speculative: R::SPECULATIVE,
            measure_fn: measure_on::<R>,
        }
    }

    /// Measures `spec` on this runtime.
    pub fn measure(&self, spec: &ScenarioSpec, config: &WorkloadConfig) -> RunMetrics {
        (self.measure_fn)(spec, config)
    }
}

impl PartialEq for RuntimeEntry {
    fn eq(&self, other: &RuntimeEntry) -> bool {
        self.name == other.name
    }
}

/// Every runtime `tmbench` can drive, in report order. The sequential
/// `seqref` reference runtime rides in the matrix as the conformance
/// baseline every speculative runtime is compared against.
pub static RUNTIME_REGISTRY: &[RuntimeEntry] = &[
    RuntimeEntry::of::<SwisstmRuntime>(),
    RuntimeEntry::of::<TlstmRuntime>(),
    RuntimeEntry::of::<SeqRefRuntime>(),
];

/// Looks a runtime up by its CLI/report name.
pub fn find_runtime(name: &str) -> Option<&'static RuntimeEntry> {
    RUNTIME_REGISTRY.iter().find(|entry| entry.name == name)
}

/// The registered runtime names, in report order.
pub fn runtime_names() -> Vec<&'static str> {
    RUNTIME_REGISTRY.iter().map(|entry| entry.name).collect()
}

/// The workload families `tmbench` can drive.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadKind {
    /// Red-black-tree lookup transactions of `ops_per_txn` lookups
    /// (Figure 1a).
    RbTree {
        /// Lookups per transaction.
        ops_per_txn: u64,
    },
    /// STAMP Vacation, low-contention parameterisation (Figure 1b).
    VacationLow,
    /// STAMP Vacation, high-contention parameterisation (Figure 1b).
    VacationHigh,
    /// STMBench7 long traversals with the given read-only percentage
    /// (Figures 2a/2b).
    Stmbench7 {
        /// Percentage of traversals that are read-only.
        read_pct: u64,
    },
    /// Uncontended fast-path overhead microworkload: `ops_per_txn` random
    /// reads per transaction over a private region.
    OverheadRead {
        /// Reads per transaction.
        ops_per_txn: u64,
    },
    /// Uncontended fast-path overhead microworkload: `ops_per_txn` random
    /// read-modify-writes per transaction over a private region.
    OverheadWrite {
        /// Read-modify-writes per transaction.
        ops_per_txn: u64,
    },
    /// YCSB-style serving workload over the `txkv` sharded transactional
    /// key-value store (zipfian key choice; batches split into speculative
    /// tasks under TLSTM).
    Kv {
        /// The operation mix (A, B, C or scan-heavy).
        mix: KvMix,
    },
    /// The KV serving workload through the durable front-end: every write
    /// batch is redo-logged by the `txlog` group-commit WAL and waits for
    /// its durability acknowledgement. Compare against the matching
    /// [`WorkloadKind::Kv`] scenario to read off the logging overhead.
    KvDurable {
        /// The operation mix (A, B, C or scan-heavy).
        mix: KvMix,
        /// When the WAL acknowledges writes.
        fsync: FsyncPolicy,
        /// `Some(n)`: a multi-committer sweep row — pin `n` client threads
        /// sharing one WAL, ignoring the matrix's `--threads` axis, so runs
        /// with different thread lists stay comparable. The committer count
        /// is part of the scenario identity (`kv-a-durable-c64`).
        committers: Option<usize>,
    },
    /// The KV serving workload driven **over the wire**: a loopback `txnet`
    /// server front-ends the store, hit by the multi-connection open-loop
    /// load generator. The scenario's thread axis is the *connection* count;
    /// server-side coalescing drains all readable connections into one store
    /// batch, so the `-cN` sweep reads off how throughput scales with
    /// offered concurrency.
    NetKv {
        /// The operation mix (A, B, C or scan-heavy).
        mix: KvMix,
        /// `Some(fsync)`: serve a durable store — every write batch is
        /// redo-logged and waits for its acknowledgement. As with
        /// [`WorkloadKind::KvDurable`], durability is scenario identity but
        /// the fsync policy is the `--fsync` run modifier.
        durable: Option<FsyncPolicy>,
        /// `Some(n)`: a connection-sweep row — pin `n` client connections,
        /// ignoring the matrix's `--threads` axis (the same contract as the
        /// committer-pinned `kv-a-durable-cN` rows).
        connections: Option<usize>,
    },
}

impl WorkloadKind {
    /// The identifier used in scenario names, reports and CLI filters.
    pub fn label(&self) -> String {
        match self {
            WorkloadKind::RbTree { ops_per_txn } => format!("rbtree-n{ops_per_txn}"),
            WorkloadKind::VacationLow => "vacation-low".to_string(),
            WorkloadKind::VacationHigh => "vacation-high".to_string(),
            WorkloadKind::Stmbench7 { read_pct } => format!("stmbench7-r{read_pct}"),
            WorkloadKind::OverheadRead { ops_per_txn } => format!("overhead-read-n{ops_per_txn}"),
            WorkloadKind::OverheadWrite { ops_per_txn } => {
                format!("overhead-write-n{ops_per_txn}")
            }
            WorkloadKind::Kv { mix } => format!("kv-{}", mix.label()),
            // The fsync policy is a run-time modifier (`--fsync`), not part
            // of the identity: scenario names must stay stable so baselines
            // keep matching. A pinned committer count *is* identity — the
            // sweep rows measure different offered loads.
            WorkloadKind::KvDurable {
                mix,
                committers: Some(n),
                ..
            } => format!("kv-{}-durable-c{n}", mix.label()),
            WorkloadKind::KvDurable { mix, .. } => format!("kv-{}-durable", mix.label()),
            WorkloadKind::NetKv {
                mix,
                durable,
                connections,
            } => {
                let mut label = format!("net-kv-{}", mix.label());
                if durable.is_some() {
                    label.push_str("-durable");
                }
                if let Some(n) = connections {
                    label.push_str(&format!("-c{n}"));
                }
                label
            }
        }
    }

    /// The CLI filter family this workload belongs to (`rbtree`, `vacation`,
    /// `stmbench7`, `overhead`, `kv`, `kv-durable`).
    pub fn family(&self) -> &'static str {
        match self {
            WorkloadKind::RbTree { .. } => "rbtree",
            WorkloadKind::VacationLow | WorkloadKind::VacationHigh => "vacation",
            WorkloadKind::Stmbench7 { .. } => "stmbench7",
            WorkloadKind::OverheadRead { .. } | WorkloadKind::OverheadWrite { .. } => "overhead",
            WorkloadKind::Kv { .. } => "kv",
            WorkloadKind::KvDurable { .. } => "kv-durable",
            WorkloadKind::NetKv { durable: None, .. } => "net-kv",
            WorkloadKind::NetKv { .. } => "net-kv-durable",
        }
    }

    /// The task splits the paper's figures use for this workload under TLSTM.
    fn default_task_splits(&self) -> &'static [usize] {
        match self {
            WorkloadKind::RbTree { .. } => &[2, 4],
            WorkloadKind::VacationLow | WorkloadKind::VacationHigh => &[2],
            WorkloadKind::Stmbench7 { .. } => &[3],
            WorkloadKind::OverheadRead { .. } | WorkloadKind::OverheadWrite { .. } => &[2],
            // A 16-op batch splits into KV_BATCH_GROUPS shard-group tasks.
            WorkloadKind::Kv { .. }
            | WorkloadKind::KvDurable { .. }
            | WorkloadKind::NetKv { .. } => &[KV_BATCH_GROUPS],
        }
    }

    /// The same workload with `fsync` swapped in, for durable kinds; other
    /// kinds are returned unchanged (the `--fsync` CLI modifier).
    pub fn with_fsync(self, fsync: FsyncPolicy) -> WorkloadKind {
        match self {
            WorkloadKind::KvDurable {
                mix, committers, ..
            } => WorkloadKind::KvDurable {
                mix,
                fsync,
                committers,
            },
            WorkloadKind::NetKv {
                mix,
                durable: Some(_),
                connections,
            } => WorkloadKind::NetKv {
                mix,
                durable: Some(fsync),
                connections,
            },
            other => other,
        }
    }

    /// The client-thread count this workload pins, if any: the
    /// multi-committer sweep rows run at their own fixed thread count and
    /// ignore the matrix's `--threads` axis.
    pub fn pinned_threads(&self) -> Option<usize> {
        match self {
            WorkloadKind::KvDurable { committers, .. } => *committers,
            WorkloadKind::NetKv { connections, .. } => *connections,
            _ => None,
        }
    }
}

/// The labels of scenarios that pin their own thread count — the
/// committer-pinned `kv-a-durable-cN` rows and the connection-pinned
/// `net-kv-…-cN` rows, which ignore an explicit `--threads` axis. `tmbench`
/// warns (non-fatally) when the user passes `--threads` alongside them, so
/// a sweep run never silently measures something other than what the flag
/// suggests. Sorted and deduplicated for stable warning text.
pub fn pinned_workload_labels(scenarios: &[ScenarioSpec]) -> Vec<String> {
    let mut labels: Vec<String> = scenarios
        .iter()
        .filter(|s| s.workload.pinned_threads().is_some())
        .map(|s| s.workload.label())
        .collect();
    labels.sort();
    labels.dedup();
    labels
}

/// Shard-groups every kv batch is planned into, on *both* runtimes: the plan
/// order is part of the batch semantics, so SwissTM (which executes the plan
/// sequentially inside one transaction) and TLSTM (which runs one speculative
/// task per group) must group identically to execute identical op streams.
pub const KV_BATCH_GROUPS: usize = 4;

/// One fully specified benchmark scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The workload to drive.
    pub workload: WorkloadKind,
    /// The registry entry of the runtime to measure.
    pub runtime: &'static RuntimeEntry,
    /// User-threads driving the workload (for network workloads: client
    /// connections).
    pub threads: usize,
    /// Tasks per user-transaction (always 1 on sequential runtimes).
    pub tasks_per_txn: usize,
    /// `Some(r)`: open-loop offered load in requests/second for network
    /// workloads (`--offered-load`). A run modifier like `--fsync`: it is
    /// not part of the scenario name, so tail-latency-vs-load sweeps diff
    /// cleanly across runs. Ignored by in-process workloads.
    pub offered_load: Option<u64>,
}

impl ScenarioSpec {
    /// The scenario's unique, stable name: `workload/runtime/tN/kM`.
    pub fn name(&self) -> String {
        format!(
            "{}/{}/t{}/k{}",
            self.workload.label(),
            self.runtime.name,
            self.threads,
            self.tasks_per_txn
        )
    }

    /// Runs the scenario and converts the metrics into a report row.
    pub fn run(&self, config: &WorkloadConfig) -> ScenarioResult {
        let metrics = self.runtime.measure(self, config);
        let latency = &metrics.latency;
        ScenarioResult {
            name: self.name(),
            workload: self.workload.label(),
            runtime: self.runtime.name.to_string(),
            threads: self.threads,
            tasks_per_txn: self.tasks_per_txn,
            ops: metrics.throughput.ops,
            elapsed_ms: metrics.throughput.elapsed.as_secs_f64() * 1e3,
            ops_per_sec: metrics.throughput.ops_per_sec(),
            latency: LatencySummary {
                mean_ns: latency.mean_ns(),
                p50_ns: latency.quantile_ns(0.50),
                p99_ns: latency.quantile_ns(0.99),
                max_ns: latency.max_ns(),
                samples: latency.count(),
            },
            stats: metrics.stats,
            wal: metrics.wal.as_ref().map(WalSummary::from_snapshot),
            net: metrics.net.as_ref().map(NetSummary::from_snapshot),
        }
    }
}

/// Measures one scenario on runtime `R` — the single place the scenario
/// matrix meets the [`TxRuntime`] API. Instantiated once per registered
/// runtime as a [`RuntimeEntry`] fn pointer, so adding a runtime never
/// touches this function.
fn measure_on<R: TxRuntime>(spec: &ScenarioSpec, config: &WorkloadConfig) -> RunMetrics {
    match &spec.workload {
        WorkloadKind::RbTree { ops_per_txn } => {
            let params = RbTreeBenchParams {
                ops_per_txn: *ops_per_txn,
                tasks_per_txn: spec.tasks_per_txn,
                threads: spec.threads,
                ..Default::default()
            };
            rbtree_bench::measure::<R>(&params, config)
        }
        WorkloadKind::VacationLow | WorkloadKind::VacationHigh => {
            let mut params = if matches!(spec.workload, WorkloadKind::VacationLow) {
                VacationParams::low_contention()
            } else {
                VacationParams::high_contention()
            };
            params.tasks_per_txn = spec.tasks_per_txn;
            params.clients = spec.threads;
            vacation::measure::<R>(&params, config)
        }
        WorkloadKind::Stmbench7 { read_pct } => {
            let params = Stmbench7Params {
                read_pct: *read_pct,
                tasks_per_txn: spec.tasks_per_txn,
                threads: spec.threads,
                ..Default::default()
            };
            stmbench7::measure::<R>(&params, config)
        }
        WorkloadKind::OverheadRead { ops_per_txn }
        | WorkloadKind::OverheadWrite { ops_per_txn } => {
            let params = OverheadParams {
                ops_per_txn: *ops_per_txn,
                write_heavy: matches!(spec.workload, WorkloadKind::OverheadWrite { .. }),
                tasks_per_txn: spec.tasks_per_txn,
                threads: spec.threads,
                ..Default::default()
            };
            overhead::measure::<R>(&params, config)
        }
        WorkloadKind::Kv { mix } | WorkloadKind::KvDurable { mix, .. } => {
            let params = KvParams {
                tasks_per_txn: kv_task_split::<R>(spec),
                threads: spec.threads,
                durable: match &spec.workload {
                    WorkloadKind::KvDurable { fsync, .. } => Some(KvDurability { fsync: *fsync }),
                    _ => None,
                },
                ..KvParams::mix(*mix)
            };
            kv::measure::<R>(&params, config)
        }
        WorkloadKind::NetKv { mix, durable, .. } => {
            let params = NetKvParams {
                // The scenario's thread axis is the connection count; the
                // offered-load modifier rides on the spec.
                connections: spec.threads,
                offered_load: spec.offered_load,
                ..NetKvParams::new(KvParams {
                    tasks_per_txn: kv_task_split::<R>(spec),
                    durable: durable.map(|fsync| KvDurability { fsync }),
                    ..KvParams::mix(*mix)
                })
            };
            net_kv::measure::<R>(&params, config)
        }
    }
}

/// The shard-group count a kv-family batch is planned into on runtime `R`.
/// `tasks_per_txn` is the batch's shard-group count. Sequential runtimes
/// carry k1 ("one task") in the matrix, but must plan with the same grouping
/// as the speculative rows so every runtime executes identical op streams —
/// derived from the workload's task-split list, which therefore must stay
/// single-valued for kv (one k1 row cannot match two groupings).
fn kv_task_split<R: TxRuntime>(spec: &ScenarioSpec) -> usize {
    if R::SPECULATIVE {
        spec.tasks_per_txn
    } else {
        let splits = spec.workload.default_task_splits();
        assert_eq!(
            splits,
            [KV_BATCH_GROUPS],
            "kv comparability requires a single task split"
        );
        splits[0]
    }
}

/// Which parts of the full matrix a run covers.
#[derive(Debug, Clone)]
pub struct MatrixSelection {
    /// Thread counts to measure (each scenario is run once per count).
    pub threads: Vec<usize>,
    /// Workload filter: each entry is a family (`rbtree`, `vacation`,
    /// `stmbench7`, `overhead`, `kv`) or a concrete workload label
    /// (`kv-a`, `rbtree-n16`, ...); empty means all.
    pub workload_families: Vec<String>,
    /// Runtime filter; empty means every registered runtime.
    pub runtimes: Vec<&'static RuntimeEntry>,
    /// Fsync-policy override for the `kv-durable` scenarios (`--fsync`);
    /// `None` keeps the default matrix's policy. Scenario names are not
    /// affected — the modifier exists to compare policies across runs.
    pub fsync: Option<FsyncPolicy>,
    /// Offered-load override for the network scenarios (`--offered-load`),
    /// in total requests/second; `None` runs them at peak (full windows).
    /// Scenario names are not affected — sweep the modifier across runs to
    /// plot tail latency against offered load.
    pub offered_load: Option<u64>,
}

impl Default for MatrixSelection {
    fn default() -> Self {
        MatrixSelection {
            threads: vec![1],
            workload_families: Vec::new(),
            runtimes: Vec::new(),
            fsync: None,
            offered_load: None,
        }
    }
}

/// The workloads of the default matrix (the paper's figure scenarios).
pub fn default_workloads() -> Vec<WorkloadKind> {
    vec![
        WorkloadKind::RbTree { ops_per_txn: 16 },
        WorkloadKind::VacationLow,
        WorkloadKind::VacationHigh,
        WorkloadKind::Stmbench7 { read_pct: 90 },
        WorkloadKind::Stmbench7 { read_pct: 10 },
        WorkloadKind::OverheadRead { ops_per_txn: 64 },
        WorkloadKind::OverheadWrite { ops_per_txn: 64 },
        WorkloadKind::Kv { mix: KvMix::A },
        WorkloadKind::Kv { mix: KvMix::B },
        WorkloadKind::Kv {
            mix: KvMix::ScanHeavy,
        },
        // The durable twins of the write-bearing kv mixes: the throughput
        // delta vs kv-a / kv-b is the WAL's group-commit overhead. The
        // default policy is the group-commit clock; override per run with
        // `--fsync always|group[:<ms>]|none`.
        WorkloadKind::KvDurable {
            mix: KvMix::A,
            fsync: FsyncPolicy::default(),
            committers: None,
        },
        WorkloadKind::KvDurable {
            mix: KvMix::B,
            fsync: FsyncPolicy::default(),
            committers: None,
        },
        // The multi-committer sweep: N client threads share one WAL, so the
        // cN rows read off how the pipelined group commit amortises fsyncs
        // as committers pile up (ops/s-per-fsync rises with N). These rows
        // pin their own thread count and ignore the `--threads` axis.
        WorkloadKind::KvDurable {
            mix: KvMix::A,
            fsync: FsyncPolicy::default(),
            committers: Some(1),
        },
        WorkloadKind::KvDurable {
            mix: KvMix::A,
            fsync: FsyncPolicy::default(),
            committers: Some(8),
        },
        WorkloadKind::KvDurable {
            mix: KvMix::A,
            fsync: FsyncPolicy::default(),
            committers: Some(64),
        },
        // The wire-served twins: the same store behind the txnet front-end,
        // driven by the open-loop generator. The delta vs kv-a is the
        // serving pipeline's cost; the durable connection sweep reads off
        // how server-side coalescing amortises STM commits and fsyncs as
        // connections pile up (one coalesced batch = one commit = one WAL
        // ticket, shared by every request drained in that poll iteration).
        WorkloadKind::NetKv {
            mix: KvMix::A,
            durable: None,
            connections: None,
        },
        WorkloadKind::NetKv {
            mix: KvMix::A,
            durable: Some(FsyncPolicy::default()),
            connections: None,
        },
        WorkloadKind::NetKv {
            mix: KvMix::A,
            durable: Some(FsyncPolicy::default()),
            connections: Some(1),
        },
        WorkloadKind::NetKv {
            mix: KvMix::A,
            durable: Some(FsyncPolicy::default()),
            connections: Some(16),
        },
        WorkloadKind::NetKv {
            mix: KvMix::A,
            durable: Some(FsyncPolicy::default()),
            connections: Some(64),
        },
    ]
}

/// The selectors a `--workloads` filter token may name: every family plus
/// every concrete workload label of the default matrix.
pub fn workload_selectors() -> Vec<String> {
    let mut selectors = Vec::new();
    for workload in default_workloads() {
        let family = workload.family().to_string();
        if !selectors.contains(&family) {
            selectors.push(family);
        }
        selectors.push(workload.label());
    }
    selectors
}

/// Expands a matrix selection into the concrete scenario list.
///
/// Sequential runtimes always run with one task per transaction (they have
/// no task decomposition); speculative runtimes run once per figure-default
/// task split.
pub fn build_scenarios(selection: &MatrixSelection) -> Vec<ScenarioSpec> {
    let runtimes: Vec<&'static RuntimeEntry> = if selection.runtimes.is_empty() {
        RUNTIME_REGISTRY.iter().collect()
    } else {
        selection.runtimes.clone()
    };
    let mut scenarios = Vec::new();
    for workload in default_workloads() {
        if !selection.workload_families.is_empty()
            && !selection
                .workload_families
                .iter()
                .any(|f| f == workload.family() || *f == workload.label())
        {
            continue;
        }
        let workload = match selection.fsync {
            Some(fsync) => workload.with_fsync(fsync),
            None => workload,
        };
        // Committer-pinned rows run once at their own thread count; every
        // other workload expands over the selection's thread axis.
        let thread_axis: Vec<usize> = match workload.pinned_threads() {
            Some(pinned) => vec![pinned],
            None => selection.threads.clone(),
        };
        for &threads in &thread_axis {
            for &runtime in &runtimes {
                if runtime.speculative {
                    for &tasks in workload.default_task_splits() {
                        scenarios.push(ScenarioSpec {
                            workload: workload.clone(),
                            runtime,
                            threads,
                            tasks_per_txn: tasks,
                            offered_load: selection.offered_load,
                        });
                    }
                } else {
                    scenarios.push(ScenarioSpec {
                        workload: workload.clone(),
                        runtime,
                        threads,
                        tasks_per_txn: 1,
                        offered_load: selection.offered_load,
                    });
                }
            }
        }
    }
    scenarios
}

/// Runs every scenario and assembles the versioned report. `progress` is
/// called before each scenario starts (for CLI progress output).
pub fn run_matrix(
    scenarios: &[ScenarioSpec],
    config: &WorkloadConfig,
    quick: bool,
    mut progress: impl FnMut(usize, usize, &ScenarioSpec),
) -> BenchReport {
    let total = scenarios.len();
    let results = scenarios
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            progress(i, total, spec);
            spec.run(config)
        })
        .collect();
    BenchReport {
        schema_version: SCHEMA_VERSION,
        quick,
        duration_ms: config.duration.as_millis() as u64,
        repetitions: config.repetitions,
        scenarios: results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_every_runtime_exactly_once() {
        let names = runtime_names();
        assert_eq!(names, ["swisstm", "tlstm", "seqref"]);
        for name in &names {
            let entry = find_runtime(name).unwrap_or_else(|| panic!("missing {name}"));
            assert_eq!(entry.name, *name);
        }
        assert!(find_runtime("blockstm").is_none(), "PR 8 scaffold slot");
        assert!(find_runtime("").is_none());
        // Speculation drives the k-axis: exactly tlstm today.
        assert!(find_runtime("tlstm").unwrap().speculative);
        assert!(!find_runtime("swisstm").unwrap().speculative);
        assert!(!find_runtime("seqref").unwrap().speculative);
    }

    #[test]
    fn default_matrix_covers_every_runtime_and_all_families() {
        let scenarios = build_scenarios(&MatrixSelection::default());
        // 5 workloads × (k1 rows + figure task splits for speculative).
        assert!(scenarios.len() >= 10);
        for runtime in RUNTIME_REGISTRY {
            assert!(
                scenarios.iter().any(|s| s.runtime == runtime),
                "{} missing from the default matrix",
                runtime.name
            );
        }
        for family in [
            "rbtree",
            "vacation",
            "stmbench7",
            "overhead",
            "kv",
            "kv-durable",
            "net-kv",
            "net-kv-durable",
        ] {
            assert!(scenarios.iter().any(|s| s.workload.family() == family));
        }
        // Names are unique — the report schema requires it.
        let names: std::collections::HashSet<String> =
            scenarios.iter().map(ScenarioSpec::name).collect();
        assert_eq!(names.len(), scenarios.len());
        // Sequential runtimes never claim a task split.
        assert!(scenarios
            .iter()
            .filter(|s| !s.runtime.speculative)
            .all(|s| s.tasks_per_txn == 1));
    }

    #[test]
    fn filters_restrict_the_matrix() {
        let selection = MatrixSelection {
            threads: vec![1, 2],
            workload_families: vec!["rbtree".to_string()],
            runtimes: vec![find_runtime("swisstm").unwrap()],
            fsync: None,
            offered_load: None,
        };
        let scenarios = build_scenarios(&selection);
        assert_eq!(
            scenarios.len(),
            2,
            "one rbtree swisstm scenario per thread count"
        );
        assert!(scenarios.iter().all(|s| s.workload.family() == "rbtree"));
        assert!(scenarios.iter().all(|s| s.runtime.name == "swisstm"));
    }

    #[test]
    fn filters_accept_concrete_workload_labels() {
        let selection = MatrixSelection {
            threads: vec![1],
            workload_families: vec!["kv-a".to_string(), "kv-scan".to_string()],
            runtimes: Vec::new(),
            fsync: None,
            offered_load: None,
        };
        let scenarios = build_scenarios(&selection);
        assert!(!scenarios.is_empty());
        assert!(scenarios
            .iter()
            .all(|s| ["kv-a", "kv-scan"].contains(&s.workload.label().as_str())));
        // The family token still selects every kv mix.
        let selection = MatrixSelection {
            threads: vec![1],
            workload_families: vec!["kv".to_string()],
            runtimes: Vec::new(),
            fsync: None,
            offered_load: None,
        };
        let labels: std::collections::HashSet<String> = build_scenarios(&selection)
            .iter()
            .map(|s| s.workload.label())
            .collect();
        assert_eq!(
            labels,
            ["kv-a", "kv-b", "kv-scan"]
                .into_iter()
                .map(String::from)
                .collect()
        );
    }

    #[test]
    fn workload_selectors_cover_families_and_labels() {
        let selectors = workload_selectors();
        for token in [
            "rbtree",
            "kv",
            "overhead",
            "kv-a",
            "kv-b",
            "kv-scan",
            "kv-durable",
            "kv-a-durable",
            "kv-b-durable",
            "kv-a-durable-c1",
            "kv-a-durable-c8",
            "kv-a-durable-c64",
            "net-kv",
            "net-kv-a",
            "net-kv-durable",
            "net-kv-a-durable",
            "net-kv-a-durable-c1",
            "net-kv-a-durable-c16",
            "net-kv-a-durable-c64",
        ] {
            assert!(
                selectors.iter().any(|s| s == token),
                "missing selector {token}"
            );
        }
        // The `kv` family must not swallow the durable twins (their overhead
        // comparison needs them separately selectable).
        let selection = MatrixSelection {
            threads: vec![1],
            workload_families: vec!["kv".to_string()],
            runtimes: Vec::new(),
            fsync: None,
            offered_load: None,
        };
        assert!(build_scenarios(&selection)
            .iter()
            .all(|s| s.workload.family() == "kv"));
    }

    #[test]
    fn fsync_override_applies_only_to_durable_workloads() {
        let selection = MatrixSelection {
            threads: vec![1],
            workload_families: vec!["kv-durable".to_string(), "kv-a".to_string()],
            runtimes: vec![find_runtime("swisstm").unwrap()],
            fsync: Some(FsyncPolicy::None),
            offered_load: None,
        };
        let scenarios = build_scenarios(&selection);
        assert!(!scenarios.is_empty());
        for spec in &scenarios {
            match &spec.workload {
                WorkloadKind::KvDurable { fsync, .. } => {
                    assert_eq!(*fsync, FsyncPolicy::None)
                }
                WorkloadKind::Kv { .. } => {}
                other => panic!("unexpected workload {other:?}"),
            }
        }
        // Scenario names are unaffected by the modifier.
        assert!(scenarios
            .iter()
            .any(|s| s.name() == "kv-a-durable/swisstm/t1/k1"));
    }

    #[test]
    fn committer_sweep_rows_pin_their_thread_count() {
        let selection = MatrixSelection {
            threads: vec![1, 2],
            workload_families: vec!["kv-durable".to_string()],
            runtimes: vec![find_runtime("swisstm").unwrap()],
            fsync: None,
            offered_load: None,
        };
        let scenarios = build_scenarios(&selection);
        // Each cN row appears exactly once, at its own thread count,
        // regardless of the thread axis.
        for (label, want) in [
            ("kv-a-durable-c1", 1),
            ("kv-a-durable-c8", 8),
            ("kv-a-durable-c64", 64),
        ] {
            let rows: Vec<_> = scenarios
                .iter()
                .filter(|s| s.workload.label() == label)
                .collect();
            assert_eq!(rows.len(), 1, "{label}");
            assert_eq!(rows[0].threads, want, "{label}");
        }
        assert!(scenarios
            .iter()
            .any(|s| s.name() == "kv-a-durable-c64/swisstm/t64/k1"));
        // Unpinned durable rows still expand over the thread axis.
        assert_eq!(
            scenarios
                .iter()
                .filter(|s| s.workload.label() == "kv-a-durable")
                .count(),
            2
        );
        // The fsync modifier preserves the pinned committer count.
        let sweep = WorkloadKind::KvDurable {
            mix: KvMix::A,
            fsync: FsyncPolicy::default(),
            committers: Some(8),
        };
        assert_eq!(
            sweep.with_fsync(FsyncPolicy::None).pinned_threads(),
            Some(8)
        );
    }

    #[test]
    fn net_rows_pin_connections_and_carry_the_load_modifier() {
        let selection = MatrixSelection {
            threads: vec![1, 2],
            workload_families: vec!["net-kv".to_string(), "net-kv-durable".to_string()],
            runtimes: vec![find_runtime("swisstm").unwrap()],
            fsync: None,
            offered_load: Some(50_000),
        };
        let scenarios = build_scenarios(&selection);
        // The connection sweep pins its own thread (= connection) count.
        for (label, want) in [
            ("net-kv-a-durable-c1", 1),
            ("net-kv-a-durable-c16", 16),
            ("net-kv-a-durable-c64", 64),
        ] {
            let rows: Vec<_> = scenarios
                .iter()
                .filter(|s| s.workload.label() == label)
                .collect();
            assert_eq!(rows.len(), 1, "{label}");
            assert_eq!(rows[0].threads, want, "{label}");
        }
        assert!(scenarios
            .iter()
            .any(|s| s.name() == "net-kv-a-durable-c64/swisstm/t64/k1"));
        // Unpinned net rows expand over the thread axis; every row carries
        // the offered-load modifier without it leaking into the name.
        assert_eq!(
            scenarios
                .iter()
                .filter(|s| s.workload.label() == "net-kv-a")
                .count(),
            2
        );
        for s in &scenarios {
            assert_eq!(s.offered_load, Some(50_000), "{}", s.name());
            assert!(!s.name().contains("50"), "{}", s.name());
        }
        // The fsync modifier reaches durable net rows and preserves the
        // pinned connection count; memory net rows are untouched.
        let sweep = WorkloadKind::NetKv {
            mix: KvMix::A,
            durable: Some(FsyncPolicy::default()),
            connections: Some(16),
        };
        let modified = sweep.with_fsync(FsyncPolicy::None);
        assert_eq!(modified.pinned_threads(), Some(16));
        assert!(matches!(
            modified,
            WorkloadKind::NetKv {
                durable: Some(FsyncPolicy::None),
                ..
            }
        ));
        let mem = WorkloadKind::NetKv {
            mix: KvMix::A,
            durable: None,
            connections: None,
        };
        assert_eq!(mem.clone().with_fsync(FsyncPolicy::Always), mem);
    }

    #[test]
    fn pinned_workload_labels_name_the_rows_that_ignore_threads() {
        let scenarios = build_scenarios(&MatrixSelection {
            threads: vec![4],
            workload_families: Vec::new(),
            runtimes: vec![find_runtime("seqref").unwrap()],
            fsync: None,
            offered_load: None,
        });
        let labels = pinned_workload_labels(&scenarios);
        assert_eq!(
            labels,
            [
                "kv-a-durable-c1",
                "kv-a-durable-c64",
                "kv-a-durable-c8",
                "net-kv-a-durable-c1",
                "net-kv-a-durable-c16",
                "net-kv-a-durable-c64",
            ]
        );
        // A selection without pinned rows warns about nothing.
        let scenarios = build_scenarios(&MatrixSelection {
            threads: vec![4],
            workload_families: vec!["rbtree".to_string()],
            runtimes: Vec::new(),
            fsync: None,
            offered_load: None,
        });
        assert!(pinned_workload_labels(&scenarios).is_empty());
    }

    #[test]
    fn net_rows_measure_through_the_registry() {
        // One registry-dispatched net scenario end to end: server boot,
        // open-loop generator, and the net summary on the report row.
        let spec = ScenarioSpec {
            workload: WorkloadKind::NetKv {
                mix: KvMix::A,
                durable: None,
                connections: Some(2),
            },
            runtime: find_runtime("seqref").unwrap(),
            threads: 2,
            tasks_per_txn: 1,
            offered_load: None,
        };
        assert_eq!(spec.name(), "net-kv-a-c2/seqref/t2/k1");
        let result = spec.run(&WorkloadConfig::quick());
        assert!(result.ops > 0, "net scenario made no progress");
        let net = result.net.expect("net rows must carry the net summary");
        assert!(net.replies > 0);
        assert!(net.mean_coalesced_requests >= 1.0);
        assert!(result.wal.is_none(), "memory net rows must not claim a WAL");
    }

    #[test]
    fn scenario_names_encode_the_axes() {
        let spec = ScenarioSpec {
            workload: WorkloadKind::Stmbench7 { read_pct: 90 },
            runtime: find_runtime("tlstm").unwrap(),
            threads: 2,
            tasks_per_txn: 3,
            offered_load: None,
        };
        assert_eq!(spec.name(), "stmbench7-r90/tlstm/t2/k3");
    }

    #[test]
    fn seqref_rows_measure_through_the_registry() {
        // A registry-dispatched seqref scenario actually runs: the matrix
        // picks new runtimes up from the registry with zero scenario-code
        // changes, and the call path is the same fn-pointer dispatch the
        // real matrix uses.
        let spec = ScenarioSpec {
            workload: WorkloadKind::RbTree { ops_per_txn: 4 },
            runtime: find_runtime("seqref").unwrap(),
            threads: 1,
            tasks_per_txn: 1,
            offered_load: None,
        };
        assert_eq!(spec.name(), "rbtree-n4/seqref/t1/k1");
        let config = WorkloadConfig::quick();
        let result = spec.run(&config);
        assert!(result.ops > 0, "seqref made no progress");
        assert_eq!(result.runtime, "seqref");
    }
}
