//! The `tmbench` scenario matrix: which workload × runtime × thread × task
//! combinations a run measures, and how each is driven.
//!
//! The default matrix covers every workload of the paper's evaluation —
//! the red-black-tree micro-benchmark (Figure 1a), both Vacation contention
//! levels (Figure 1b) and both STMBench7 traversal mixes (Figures 2a/2b) —
//! on both runtimes, at the task splits the figures use. The thread list is
//! configurable so later scaling PRs can benchmark wider matrices with the
//! same tool.

use tlstm_workloads::harness::RunMetrics;
use tlstm_workloads::kv::{self, FsyncPolicy, KvDurability, KvMix, KvParams};
use tlstm_workloads::overhead::{self, OverheadParams};
use tlstm_workloads::rbtree_bench::{self, RbTreeBenchParams};
use tlstm_workloads::stmbench7::{self, Stmbench7Params};
use tlstm_workloads::vacation::{self, VacationParams};
use tlstm_workloads::WorkloadConfig;

use crate::report::{BenchReport, LatencySummary, ScenarioResult, SCHEMA_VERSION};

/// The runtime a scenario measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeKind {
    /// The SwissTM baseline (plain word-based STM).
    Swisstm,
    /// The TLSTM unified STM+TLS runtime.
    Tlstm,
}

impl RuntimeKind {
    /// All runtimes, in report order.
    pub const ALL: [RuntimeKind; 2] = [RuntimeKind::Swisstm, RuntimeKind::Tlstm];

    /// The identifier used in scenario names, reports and CLI filters.
    pub fn label(self) -> &'static str {
        match self {
            RuntimeKind::Swisstm => "swisstm",
            RuntimeKind::Tlstm => "tlstm",
        }
    }
}

/// The workload families `tmbench` can drive.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadKind {
    /// Red-black-tree lookup transactions of `ops_per_txn` lookups
    /// (Figure 1a).
    RbTree {
        /// Lookups per transaction.
        ops_per_txn: u64,
    },
    /// STAMP Vacation, low-contention parameterisation (Figure 1b).
    VacationLow,
    /// STAMP Vacation, high-contention parameterisation (Figure 1b).
    VacationHigh,
    /// STMBench7 long traversals with the given read-only percentage
    /// (Figures 2a/2b).
    Stmbench7 {
        /// Percentage of traversals that are read-only.
        read_pct: u64,
    },
    /// Uncontended fast-path overhead microworkload: `ops_per_txn` random
    /// reads per transaction over a private region.
    OverheadRead {
        /// Reads per transaction.
        ops_per_txn: u64,
    },
    /// Uncontended fast-path overhead microworkload: `ops_per_txn` random
    /// read-modify-writes per transaction over a private region.
    OverheadWrite {
        /// Read-modify-writes per transaction.
        ops_per_txn: u64,
    },
    /// YCSB-style serving workload over the `txkv` sharded transactional
    /// key-value store (zipfian key choice; batches split into speculative
    /// tasks under TLSTM).
    Kv {
        /// The operation mix (A, B, C or scan-heavy).
        mix: KvMix,
    },
    /// The KV serving workload through the durable front-end: every write
    /// batch is redo-logged by the `txlog` group-commit WAL and waits for
    /// its durability acknowledgement. Compare against the matching
    /// [`WorkloadKind::Kv`] scenario to read off the logging overhead.
    KvDurable {
        /// The operation mix (A, B, C or scan-heavy).
        mix: KvMix,
        /// When the WAL acknowledges writes.
        fsync: FsyncPolicy,
        /// `Some(n)`: a multi-committer sweep row — pin `n` client threads
        /// sharing one WAL, ignoring the matrix's `--threads` axis, so runs
        /// with different thread lists stay comparable. The committer count
        /// is part of the scenario identity (`kv-a-durable-c64`).
        committers: Option<usize>,
    },
}

impl WorkloadKind {
    /// The identifier used in scenario names, reports and CLI filters.
    pub fn label(&self) -> String {
        match self {
            WorkloadKind::RbTree { ops_per_txn } => format!("rbtree-n{ops_per_txn}"),
            WorkloadKind::VacationLow => "vacation-low".to_string(),
            WorkloadKind::VacationHigh => "vacation-high".to_string(),
            WorkloadKind::Stmbench7 { read_pct } => format!("stmbench7-r{read_pct}"),
            WorkloadKind::OverheadRead { ops_per_txn } => format!("overhead-read-n{ops_per_txn}"),
            WorkloadKind::OverheadWrite { ops_per_txn } => {
                format!("overhead-write-n{ops_per_txn}")
            }
            WorkloadKind::Kv { mix } => format!("kv-{}", mix.label()),
            // The fsync policy is a run-time modifier (`--fsync`), not part
            // of the identity: scenario names must stay stable so baselines
            // keep matching. A pinned committer count *is* identity — the
            // sweep rows measure different offered loads.
            WorkloadKind::KvDurable {
                mix,
                committers: Some(n),
                ..
            } => format!("kv-{}-durable-c{n}", mix.label()),
            WorkloadKind::KvDurable { mix, .. } => format!("kv-{}-durable", mix.label()),
        }
    }

    /// The CLI filter family this workload belongs to (`rbtree`, `vacation`,
    /// `stmbench7`, `overhead`, `kv`, `kv-durable`).
    pub fn family(&self) -> &'static str {
        match self {
            WorkloadKind::RbTree { .. } => "rbtree",
            WorkloadKind::VacationLow | WorkloadKind::VacationHigh => "vacation",
            WorkloadKind::Stmbench7 { .. } => "stmbench7",
            WorkloadKind::OverheadRead { .. } | WorkloadKind::OverheadWrite { .. } => "overhead",
            WorkloadKind::Kv { .. } => "kv",
            WorkloadKind::KvDurable { .. } => "kv-durable",
        }
    }

    /// The task splits the paper's figures use for this workload under TLSTM.
    fn default_task_splits(&self) -> &'static [usize] {
        match self {
            WorkloadKind::RbTree { .. } => &[2, 4],
            WorkloadKind::VacationLow | WorkloadKind::VacationHigh => &[2],
            WorkloadKind::Stmbench7 { .. } => &[3],
            WorkloadKind::OverheadRead { .. } | WorkloadKind::OverheadWrite { .. } => &[2],
            // A 16-op batch splits into KV_BATCH_GROUPS shard-group tasks.
            WorkloadKind::Kv { .. } | WorkloadKind::KvDurable { .. } => &[KV_BATCH_GROUPS],
        }
    }

    /// The same workload with `fsync` swapped in, for durable kinds; other
    /// kinds are returned unchanged (the `--fsync` CLI modifier).
    pub fn with_fsync(self, fsync: FsyncPolicy) -> WorkloadKind {
        match self {
            WorkloadKind::KvDurable {
                mix, committers, ..
            } => WorkloadKind::KvDurable {
                mix,
                fsync,
                committers,
            },
            other => other,
        }
    }

    /// The client-thread count this workload pins, if any: the
    /// multi-committer sweep rows run at their own fixed thread count and
    /// ignore the matrix's `--threads` axis.
    pub fn pinned_threads(&self) -> Option<usize> {
        match self {
            WorkloadKind::KvDurable { committers, .. } => *committers,
            _ => None,
        }
    }
}

/// Shard-groups every kv batch is planned into, on *both* runtimes: the plan
/// order is part of the batch semantics, so SwissTM (which executes the plan
/// sequentially inside one transaction) and TLSTM (which runs one speculative
/// task per group) must group identically to execute identical op streams.
pub const KV_BATCH_GROUPS: usize = 4;

/// One fully specified benchmark scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The workload to drive.
    pub workload: WorkloadKind,
    /// The runtime to measure.
    pub runtime: RuntimeKind,
    /// User-threads driving the workload.
    pub threads: usize,
    /// Tasks per user-transaction (always 1 under SwissTM).
    pub tasks_per_txn: usize,
}

impl ScenarioSpec {
    /// The scenario's unique, stable name: `workload/runtime/tN/kM`.
    pub fn name(&self) -> String {
        format!(
            "{}/{}/t{}/k{}",
            self.workload.label(),
            self.runtime.label(),
            self.threads,
            self.tasks_per_txn
        )
    }

    /// Runs the scenario and converts the metrics into a report row.
    pub fn run(&self, config: &WorkloadConfig) -> ScenarioResult {
        let metrics = self.measure(config);
        let latency = &metrics.latency;
        ScenarioResult {
            name: self.name(),
            workload: self.workload.label(),
            runtime: self.runtime.label().to_string(),
            threads: self.threads,
            tasks_per_txn: self.tasks_per_txn,
            ops: metrics.throughput.ops,
            elapsed_ms: metrics.throughput.elapsed.as_secs_f64() * 1e3,
            ops_per_sec: metrics.throughput.ops_per_sec(),
            latency: LatencySummary {
                mean_ns: latency.mean_ns(),
                p50_ns: latency.quantile_ns(0.50),
                p99_ns: latency.quantile_ns(0.99),
                max_ns: latency.max_ns(),
                samples: latency.count(),
            },
            stats: metrics.stats,
        }
    }

    fn measure(&self, config: &WorkloadConfig) -> RunMetrics {
        match &self.workload {
            WorkloadKind::RbTree { ops_per_txn } => {
                let params = RbTreeBenchParams {
                    ops_per_txn: *ops_per_txn,
                    tasks_per_txn: self.tasks_per_txn,
                    threads: self.threads,
                    ..Default::default()
                };
                match self.runtime {
                    RuntimeKind::Swisstm => rbtree_bench::measure_swisstm(&params, config),
                    RuntimeKind::Tlstm => rbtree_bench::measure_tlstm(&params, config),
                }
            }
            WorkloadKind::VacationLow | WorkloadKind::VacationHigh => {
                let mut params = if matches!(self.workload, WorkloadKind::VacationLow) {
                    VacationParams::low_contention()
                } else {
                    VacationParams::high_contention()
                };
                params.tasks_per_txn = self.tasks_per_txn;
                params.clients = self.threads;
                match self.runtime {
                    RuntimeKind::Swisstm => vacation::measure_swisstm(&params, config),
                    RuntimeKind::Tlstm => vacation::measure_tlstm(&params, config),
                }
            }
            WorkloadKind::Stmbench7 { read_pct } => {
                let params = Stmbench7Params {
                    read_pct: *read_pct,
                    tasks_per_txn: self.tasks_per_txn,
                    threads: self.threads,
                    ..Default::default()
                };
                match self.runtime {
                    RuntimeKind::Swisstm => stmbench7::measure_swisstm(&params, config),
                    RuntimeKind::Tlstm => stmbench7::measure_tlstm(&params, config),
                }
            }
            WorkloadKind::OverheadRead { ops_per_txn }
            | WorkloadKind::OverheadWrite { ops_per_txn } => {
                let params = OverheadParams {
                    ops_per_txn: *ops_per_txn,
                    write_heavy: matches!(self.workload, WorkloadKind::OverheadWrite { .. }),
                    tasks_per_txn: self.tasks_per_txn,
                    threads: self.threads,
                    ..Default::default()
                };
                match self.runtime {
                    RuntimeKind::Swisstm => overhead::measure_swisstm(&params, config),
                    RuntimeKind::Tlstm => overhead::measure_tlstm(&params, config),
                }
            }
            WorkloadKind::Kv { mix } | WorkloadKind::KvDurable { mix, .. } => {
                // `tasks_per_txn` is the batch's shard-group count. SwissTM
                // scenarios carry k1 ("one task") in the matrix, but must
                // plan with the same grouping as TLSTM so both runtimes
                // execute identical op streams — derived from the workload's
                // task-split list, which therefore must stay single-valued
                // for kv (one SwissTM row cannot match two groupings).
                let params = KvParams {
                    tasks_per_txn: match self.runtime {
                        RuntimeKind::Swisstm => {
                            let splits = self.workload.default_task_splits();
                            assert_eq!(
                                splits,
                                [KV_BATCH_GROUPS],
                                "kv comparability requires a single task split"
                            );
                            splits[0]
                        }
                        RuntimeKind::Tlstm => self.tasks_per_txn,
                    },
                    threads: self.threads,
                    durable: match &self.workload {
                        WorkloadKind::KvDurable { fsync, .. } => {
                            Some(KvDurability { fsync: *fsync })
                        }
                        _ => None,
                    },
                    ..KvParams::mix(*mix)
                };
                match self.runtime {
                    RuntimeKind::Swisstm => kv::measure_swisstm(&params, config),
                    RuntimeKind::Tlstm => kv::measure_tlstm(&params, config),
                }
            }
        }
    }
}

/// Which parts of the full matrix a run covers.
#[derive(Debug, Clone)]
pub struct MatrixSelection {
    /// Thread counts to measure (each scenario is run once per count).
    pub threads: Vec<usize>,
    /// Workload filter: each entry is a family (`rbtree`, `vacation`,
    /// `stmbench7`, `overhead`, `kv`) or a concrete workload label
    /// (`kv-a`, `rbtree-n16`, ...); empty means all.
    pub workload_families: Vec<String>,
    /// Runtime filter; empty means both.
    pub runtimes: Vec<RuntimeKind>,
    /// Fsync-policy override for the `kv-durable` scenarios (`--fsync`);
    /// `None` keeps the default matrix's policy. Scenario names are not
    /// affected — the modifier exists to compare policies across runs.
    pub fsync: Option<FsyncPolicy>,
}

impl Default for MatrixSelection {
    fn default() -> Self {
        MatrixSelection {
            threads: vec![1],
            workload_families: Vec::new(),
            runtimes: Vec::new(),
            fsync: None,
        }
    }
}

/// The workloads of the default matrix (the paper's figure scenarios).
pub fn default_workloads() -> Vec<WorkloadKind> {
    vec![
        WorkloadKind::RbTree { ops_per_txn: 16 },
        WorkloadKind::VacationLow,
        WorkloadKind::VacationHigh,
        WorkloadKind::Stmbench7 { read_pct: 90 },
        WorkloadKind::Stmbench7 { read_pct: 10 },
        WorkloadKind::OverheadRead { ops_per_txn: 64 },
        WorkloadKind::OverheadWrite { ops_per_txn: 64 },
        WorkloadKind::Kv { mix: KvMix::A },
        WorkloadKind::Kv { mix: KvMix::B },
        WorkloadKind::Kv {
            mix: KvMix::ScanHeavy,
        },
        // The durable twins of the write-bearing kv mixes: the throughput
        // delta vs kv-a / kv-b is the WAL's group-commit overhead. The
        // default policy is the group-commit clock; override per run with
        // `--fsync always|group[:<ms>]|none`.
        WorkloadKind::KvDurable {
            mix: KvMix::A,
            fsync: FsyncPolicy::default(),
            committers: None,
        },
        WorkloadKind::KvDurable {
            mix: KvMix::B,
            fsync: FsyncPolicy::default(),
            committers: None,
        },
        // The multi-committer sweep: N client threads share one WAL, so the
        // cN rows read off how the pipelined group commit amortises fsyncs
        // as committers pile up (ops/s-per-fsync rises with N). These rows
        // pin their own thread count and ignore the `--threads` axis.
        WorkloadKind::KvDurable {
            mix: KvMix::A,
            fsync: FsyncPolicy::default(),
            committers: Some(1),
        },
        WorkloadKind::KvDurable {
            mix: KvMix::A,
            fsync: FsyncPolicy::default(),
            committers: Some(8),
        },
        WorkloadKind::KvDurable {
            mix: KvMix::A,
            fsync: FsyncPolicy::default(),
            committers: Some(64),
        },
    ]
}

/// The selectors a `--workloads` filter token may name: every family plus
/// every concrete workload label of the default matrix.
pub fn workload_selectors() -> Vec<String> {
    let mut selectors = Vec::new();
    for workload in default_workloads() {
        let family = workload.family().to_string();
        if !selectors.contains(&family) {
            selectors.push(family);
        }
        selectors.push(workload.label());
    }
    selectors
}

/// Expands a matrix selection into the concrete scenario list.
///
/// SwissTM always runs with one task per transaction (it has no task
/// decomposition); TLSTM runs once per figure-default task split.
pub fn build_scenarios(selection: &MatrixSelection) -> Vec<ScenarioSpec> {
    let runtimes: &[RuntimeKind] = if selection.runtimes.is_empty() {
        &RuntimeKind::ALL
    } else {
        &selection.runtimes
    };
    let mut scenarios = Vec::new();
    for workload in default_workloads() {
        if !selection.workload_families.is_empty()
            && !selection
                .workload_families
                .iter()
                .any(|f| f == workload.family() || *f == workload.label())
        {
            continue;
        }
        let workload = match selection.fsync {
            Some(fsync) => workload.with_fsync(fsync),
            None => workload,
        };
        // Committer-pinned rows run once at their own thread count; every
        // other workload expands over the selection's thread axis.
        let thread_axis: Vec<usize> = match workload.pinned_threads() {
            Some(pinned) => vec![pinned],
            None => selection.threads.clone(),
        };
        for &threads in &thread_axis {
            for &runtime in runtimes {
                match runtime {
                    RuntimeKind::Swisstm => scenarios.push(ScenarioSpec {
                        workload: workload.clone(),
                        runtime,
                        threads,
                        tasks_per_txn: 1,
                    }),
                    RuntimeKind::Tlstm => {
                        for &tasks in workload.default_task_splits() {
                            scenarios.push(ScenarioSpec {
                                workload: workload.clone(),
                                runtime,
                                threads,
                                tasks_per_txn: tasks,
                            });
                        }
                    }
                }
            }
        }
    }
    scenarios
}

/// Runs every scenario and assembles the versioned report. `progress` is
/// called before each scenario starts (for CLI progress output).
pub fn run_matrix(
    scenarios: &[ScenarioSpec],
    config: &WorkloadConfig,
    quick: bool,
    mut progress: impl FnMut(usize, usize, &ScenarioSpec),
) -> BenchReport {
    let total = scenarios.len();
    let results = scenarios
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            progress(i, total, spec);
            spec.run(config)
        })
        .collect();
    BenchReport {
        schema_version: SCHEMA_VERSION,
        quick,
        duration_ms: config.duration.as_millis() as u64,
        repetitions: config.repetitions,
        scenarios: results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matrix_covers_both_runtimes_and_all_families() {
        let scenarios = build_scenarios(&MatrixSelection::default());
        // 5 workloads × (1 swisstm + figure task splits for tlstm).
        assert!(scenarios.len() >= 10);
        for runtime in RuntimeKind::ALL {
            assert!(scenarios.iter().any(|s| s.runtime == runtime));
        }
        for family in [
            "rbtree",
            "vacation",
            "stmbench7",
            "overhead",
            "kv",
            "kv-durable",
        ] {
            assert!(scenarios.iter().any(|s| s.workload.family() == family));
        }
        // Names are unique — the report schema requires it.
        let names: std::collections::HashSet<String> =
            scenarios.iter().map(ScenarioSpec::name).collect();
        assert_eq!(names.len(), scenarios.len());
        // SwissTM never claims a task split.
        assert!(scenarios
            .iter()
            .filter(|s| s.runtime == RuntimeKind::Swisstm)
            .all(|s| s.tasks_per_txn == 1));
    }

    #[test]
    fn filters_restrict_the_matrix() {
        let selection = MatrixSelection {
            threads: vec![1, 2],
            workload_families: vec!["rbtree".to_string()],
            runtimes: vec![RuntimeKind::Swisstm],
            fsync: None,
        };
        let scenarios = build_scenarios(&selection);
        assert_eq!(
            scenarios.len(),
            2,
            "one rbtree swisstm scenario per thread count"
        );
        assert!(scenarios.iter().all(|s| s.workload.family() == "rbtree"));
        assert!(scenarios.iter().all(|s| s.runtime == RuntimeKind::Swisstm));
    }

    #[test]
    fn filters_accept_concrete_workload_labels() {
        let selection = MatrixSelection {
            threads: vec![1],
            workload_families: vec!["kv-a".to_string(), "kv-scan".to_string()],
            runtimes: Vec::new(),
            fsync: None,
        };
        let scenarios = build_scenarios(&selection);
        assert!(!scenarios.is_empty());
        assert!(scenarios
            .iter()
            .all(|s| ["kv-a", "kv-scan"].contains(&s.workload.label().as_str())));
        // The family token still selects every kv mix.
        let selection = MatrixSelection {
            threads: vec![1],
            workload_families: vec!["kv".to_string()],
            runtimes: Vec::new(),
            fsync: None,
        };
        let labels: std::collections::HashSet<String> = build_scenarios(&selection)
            .iter()
            .map(|s| s.workload.label())
            .collect();
        assert_eq!(
            labels,
            ["kv-a", "kv-b", "kv-scan"]
                .into_iter()
                .map(String::from)
                .collect()
        );
    }

    #[test]
    fn workload_selectors_cover_families_and_labels() {
        let selectors = workload_selectors();
        for token in [
            "rbtree",
            "kv",
            "overhead",
            "kv-a",
            "kv-b",
            "kv-scan",
            "kv-durable",
            "kv-a-durable",
            "kv-b-durable",
            "kv-a-durable-c1",
            "kv-a-durable-c8",
            "kv-a-durable-c64",
        ] {
            assert!(
                selectors.iter().any(|s| s == token),
                "missing selector {token}"
            );
        }
        // The `kv` family must not swallow the durable twins (their overhead
        // comparison needs them separately selectable).
        let selection = MatrixSelection {
            threads: vec![1],
            workload_families: vec!["kv".to_string()],
            runtimes: Vec::new(),
            fsync: None,
        };
        assert!(build_scenarios(&selection)
            .iter()
            .all(|s| s.workload.family() == "kv"));
    }

    #[test]
    fn fsync_override_applies_only_to_durable_workloads() {
        let selection = MatrixSelection {
            threads: vec![1],
            workload_families: vec!["kv-durable".to_string(), "kv-a".to_string()],
            runtimes: vec![RuntimeKind::Swisstm],
            fsync: Some(FsyncPolicy::None),
        };
        let scenarios = build_scenarios(&selection);
        assert!(!scenarios.is_empty());
        for spec in &scenarios {
            match &spec.workload {
                WorkloadKind::KvDurable { fsync, .. } => {
                    assert_eq!(*fsync, FsyncPolicy::None)
                }
                WorkloadKind::Kv { .. } => {}
                other => panic!("unexpected workload {other:?}"),
            }
        }
        // Scenario names are unaffected by the modifier.
        assert!(scenarios
            .iter()
            .any(|s| s.name() == "kv-a-durable/swisstm/t1/k1"));
    }

    #[test]
    fn committer_sweep_rows_pin_their_thread_count() {
        let selection = MatrixSelection {
            threads: vec![1, 2],
            workload_families: vec!["kv-durable".to_string()],
            runtimes: vec![RuntimeKind::Swisstm],
            fsync: None,
        };
        let scenarios = build_scenarios(&selection);
        // Each cN row appears exactly once, at its own thread count,
        // regardless of the thread axis.
        for (label, want) in [
            ("kv-a-durable-c1", 1),
            ("kv-a-durable-c8", 8),
            ("kv-a-durable-c64", 64),
        ] {
            let rows: Vec<_> = scenarios
                .iter()
                .filter(|s| s.workload.label() == label)
                .collect();
            assert_eq!(rows.len(), 1, "{label}");
            assert_eq!(rows[0].threads, want, "{label}");
        }
        assert!(scenarios
            .iter()
            .any(|s| s.name() == "kv-a-durable-c64/swisstm/t64/k1"));
        // Unpinned durable rows still expand over the thread axis.
        assert_eq!(
            scenarios
                .iter()
                .filter(|s| s.workload.label() == "kv-a-durable")
                .count(),
            2
        );
        // The fsync modifier preserves the pinned committer count.
        let sweep = WorkloadKind::KvDurable {
            mix: KvMix::A,
            fsync: FsyncPolicy::default(),
            committers: Some(8),
        };
        assert_eq!(
            sweep.with_fsync(FsyncPolicy::None).pinned_threads(),
            Some(8)
        );
    }

    #[test]
    fn scenario_names_encode_the_axes() {
        let spec = ScenarioSpec {
            workload: WorkloadKind::Stmbench7 { read_pct: 90 },
            runtime: RuntimeKind::Tlstm,
            threads: 2,
            tasks_per_txn: 3,
        };
        assert_eq!(spec.name(), "stmbench7-r90/tlstm/t2/k3");
    }
}
