//! `tmbench` — the unified benchmark runner of the TLSTM reproduction.
//!
//! One tool drives every workload (red-black tree, Vacation low/high,
//! STMBench7 read/write mixes) on both runtimes (SwissTM, TLSTM) over a
//! configurable thread matrix, prints a human-readable table, and emits the
//! versioned JSON report the CI perf-smoke gate consumes.
//!
//! ```text
//! tmbench --quick --out BENCH_results.json        # measure, write report
//! tmbench --baseline BENCH_baseline.json --gate 10
//!                                                 # diff current vs baseline
//! tmbench --check-schema BENCH_results.json       # validate a report file
//! tmbench --quick --trace trace.json --metrics-out metrics.prom
//!                                                 # with observability output
//! ```
//!
//! Run `tmbench --help` for the full flag list. Exit codes: 0 on success,
//! 1 on regression/validation failure, 2 on usage errors.

use std::process::ExitCode;
use std::time::Duration;

use tlstm_bench::report::{diff_reports, BenchReport};
use tlstm_bench::scenarios::{
    build_scenarios, find_runtime, pinned_workload_labels, run_matrix, runtime_names,
    workload_selectors, MatrixSelection, RuntimeEntry,
};
use tlstm_bench::{cell, env_u32, env_u64, DEFAULT_BENCH_MS};
use tlstm_workloads::kv::FsyncPolicy;
use tlstm_workloads::WorkloadConfig;

/// Duration per data point for `--quick` runs when nothing overrides it.
const QUICK_BENCH_MS: u64 = 50;

/// Default report path, shared with the CI workflow and `scripts/bench.sh`.
const DEFAULT_REPORT_PATH: &str = "BENCH_results.json";

const USAGE: &str = "\
tmbench — unified TLSTM/SwissTM benchmark runner

USAGE:
    tmbench [OPTIONS]                      run the scenario matrix
    tmbench --baseline OLD.json [--current NEW.json] --gate PCT
                                           diff two reports, exit 1 on regression
    tmbench --check-schema [FILE]          validate a report file
    tmbench --list                         print the scenario matrix and exit

MEASUREMENT OPTIONS:
    --quick              short runs (50 ms/point) for smoke testing
    --duration-ms N      measured duration per data point
                         (default: TLSTM_BENCH_MS, else 300; 50 with --quick)
    --reps N             repetitions to average (default: TLSTM_BENCH_REPS, else 1)
    --seed N             workload RNG seed (default: TLSTM_BENCH_SEED, else 0xC0FFEE)
    --threads A,B,...    thread counts to measure (default: 1)
    --workloads LIST     comma-separated families (rbtree,vacation,stmbench7,
                         overhead,kv,kv-durable,net-kv,net-kv-durable) or
                         concrete labels (kv-a, kv-a-durable, net-kv-a,
                         rbtree-n16,...); default: all.
                         kv-a-durable-cN rows (N = 1, 8, 64) are the
                         multi-committer sweep: they pin N client threads on
                         one WAL and ignore --threads. net-kv-a-durable-cN
                         rows (N = 1, 16, 64) are the connection sweep: they
                         pin N client connections the same way
    --runtimes LIST      comma-separated runtimes from the registry:
                         swisstm,tlstm,seqref (default: all registered;
                         seqref is the sequential conformance reference)
    --fsync POLICY       WAL fsync policy of the kv-durable and
                         net-kv-durable scenarios: always, group, group:<ms>,
                         none (default: group; scenario names are unaffected,
                         so reports stay comparable against the baseline)
    --offered-load N     open-loop offered load of the net-kv scenarios, in
                         total requests/second (default: peak — every
                         connection keeps its pipeline window full). Like
                         --fsync, a run modifier: sweep it across runs to
                         plot tail latency against offered load
    --out FILE           write the JSON report to FILE

OBSERVABILITY OPTIONS:
    --trace FILE         enable txobs tracing for the run and write the events
                         as Chrome trace-event JSON to FILE (load it in
                         Perfetto / chrome://tracing)
    --metrics-out FILE   after the run, write the txobs metrics exposition
                         (Prometheus text format: WAL append/fsync histograms,
                         KV health gauge, per-scenario throughput and
                         commit/abort counters) to FILE

GATE OPTIONS:
    --baseline FILE      baseline report to diff against
    --current FILE       current report (default: BENCH_results.json)
    --gate PCT           regression threshold in percent (default: 10)

MISC:
    --check-schema [FILE]  validate FILE (default: BENCH_results.json)
    --list                 print scenario names without running anything
    --help                 this text
";

#[derive(Debug, Default)]
struct CliArgs {
    quick: bool,
    duration_ms: Option<u64>,
    reps: Option<u32>,
    seed: Option<u64>,
    threads: Option<Vec<usize>>,
    workloads: Vec<String>,
    runtimes: Vec<&'static RuntimeEntry>,
    fsync: Option<FsyncPolicy>,
    offered_load: Option<u64>,
    out: Option<String>,
    trace: Option<String>,
    metrics_out: Option<String>,
    baseline: Option<String>,
    current: Option<String>,
    gate_pct: Option<f64>,
    check_schema: Option<String>,
    list: bool,
    help: bool,
}

fn parse_args(args: &[String]) -> Result<CliArgs, String> {
    let mut cli = CliArgs::default();
    let mut i = 0;
    let value_of = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--quick" => cli.quick = true,
            "--list" => cli.list = true,
            "--help" | "-h" => cli.help = true,
            "--duration-ms" => {
                let v = value_of(&mut i, arg)?;
                cli.duration_ms = Some(
                    v.parse()
                        .map_err(|e| format!("invalid --duration-ms '{v}': {e}"))?,
                );
            }
            "--reps" => {
                let v = value_of(&mut i, arg)?;
                cli.reps = Some(
                    v.parse()
                        .map_err(|e| format!("invalid --reps '{v}': {e}"))?,
                );
            }
            "--seed" => {
                let v = value_of(&mut i, arg)?;
                cli.seed = Some(
                    v.parse()
                        .map_err(|e| format!("invalid --seed '{v}': {e}"))?,
                );
            }
            "--threads" => {
                let v = value_of(&mut i, arg)?;
                let mut threads = Vec::new();
                for part in v.split(',') {
                    let n: usize = part
                        .trim()
                        .parse()
                        .map_err(|e| format!("invalid thread count '{part}': {e}"))?;
                    if n == 0 {
                        return Err("thread counts must be positive".to_string());
                    }
                    threads.push(n);
                }
                // Dedupe (keeping order): repeated counts would produce
                // duplicate scenario names, which the report schema rejects.
                let mut seen = std::collections::HashSet::new();
                threads.retain(|n| seen.insert(*n));
                if threads.is_empty() {
                    return Err("--threads needs at least one count".to_string());
                }
                cli.threads = Some(threads);
            }
            "--workloads" => {
                let v = value_of(&mut i, arg)?;
                let selectors = workload_selectors();
                for part in v.split(',') {
                    let token = part.trim().to_lowercase();
                    if !selectors.contains(&token) {
                        return Err(format!(
                            "unknown workload '{token}' (want one of: {})",
                            selectors.join(", ")
                        ));
                    }
                    cli.workloads.push(token);
                }
            }
            "--runtimes" => {
                let v = value_of(&mut i, arg)?;
                for part in v.split(',') {
                    let token = part.trim().to_lowercase();
                    let runtime = find_runtime(&token).ok_or_else(|| {
                        format!(
                            "unknown runtime '{token}' (registered: {})",
                            runtime_names().join(", ")
                        )
                    })?;
                    if !cli.runtimes.contains(&runtime) {
                        cli.runtimes.push(runtime);
                    }
                }
            }
            "--fsync" => {
                let v = value_of(&mut i, arg)?;
                cli.fsync = Some(FsyncPolicy::parse(v.trim())?);
            }
            "--offered-load" => {
                let v = value_of(&mut i, arg)?;
                let rate: u64 = v
                    .parse()
                    .map_err(|e| format!("invalid --offered-load '{v}': {e}"))?;
                if rate == 0 {
                    return Err("--offered-load must be positive".to_string());
                }
                cli.offered_load = Some(rate);
            }
            "--out" => cli.out = Some(value_of(&mut i, arg)?),
            "--trace" => cli.trace = Some(value_of(&mut i, arg)?),
            "--metrics-out" => cli.metrics_out = Some(value_of(&mut i, arg)?),
            "--baseline" => cli.baseline = Some(value_of(&mut i, arg)?),
            "--current" => cli.current = Some(value_of(&mut i, arg)?),
            "--gate" => {
                let v = value_of(&mut i, arg)?;
                let pct: f64 = v
                    .parse()
                    .map_err(|e| format!("invalid --gate '{v}': {e}"))?;
                if !(0.0..=100.0).contains(&pct) {
                    return Err(format!("--gate must be in 0..=100, got {pct}"));
                }
                cli.gate_pct = Some(pct);
            }
            "--check-schema" => {
                // Optional value: a following token that is not a flag.
                let file = match args.get(i + 1) {
                    Some(next) if !next.starts_with("--") => {
                        i += 1;
                        next.clone()
                    }
                    _ => DEFAULT_REPORT_PATH.to_string(),
                };
                cli.check_schema = Some(file);
            }
            other => return Err(format!("unknown flag '{other}' (see --help)")),
        }
        i += 1;
    }
    Ok(cli)
}

fn load_report(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchReport::parse(&text)
        .map_err(|errors| format!("{path} is invalid:\n  {}", errors.join("\n  ")))
}

fn workload_config(cli: &CliArgs) -> WorkloadConfig {
    let default_ms = if cli.quick {
        QUICK_BENCH_MS
    } else {
        DEFAULT_BENCH_MS
    };
    let ms = cli
        .duration_ms
        .unwrap_or_else(|| env_u64("TLSTM_BENCH_MS", default_ms));
    let reps = cli.reps.unwrap_or_else(|| env_u32("TLSTM_BENCH_REPS", 1));
    let seed = cli
        .seed
        .unwrap_or_else(|| env_u64("TLSTM_BENCH_SEED", 0xC0FFEE));
    WorkloadConfig {
        duration: Duration::from_millis(ms.max(1)),
        repetitions: reps.max(1),
        seed,
    }
}

fn print_report_table(report: &BenchReport) {
    println!(
        "# tmbench report (schema v{}, {} ms/point, {} rep{})",
        report.schema_version,
        report.duration_ms,
        report.repetitions,
        if report.repetitions == 1 { "" } else { "s" }
    );
    println!(
        "{:<34} {:>14} {:>12} {:>12} {:>10} {:>10}",
        "scenario", "ops/s", "mean µs", "p99 µs", "commits", "aborts"
    );
    for s in &report.scenarios {
        println!(
            "{:<34} {:>14} {:>12} {:>12} {:>10} {:>10}",
            s.name,
            cell(s.ops_per_sec),
            cell(s.latency.mean_ns / 1e3),
            cell(s.latency.p99_ns as f64 / 1e3),
            s.stats.tx_commits,
            s.stats.total_aborts(),
        );
        if let Some(wal) = &s.wal {
            println!(
                "{:<34} {:>14} {:>12} {:>12} {:>10} {:>10}",
                "  wal",
                format!("{:.1} rec/batch", wal.mean_batch_records),
                format!("{} batches", wal.batches),
                format!("{} fsyncs", wal.fsyncs),
                format!("p50 {}µs", wal.fsync_p50_ns / 1000),
                format!("p99 {}µs", wal.fsync_p99_ns / 1000),
            );
        }
        if let Some(net) = &s.net {
            println!(
                "{:<34} {:>14} {:>12} {:>12} {:>10} {:>10}",
                "  net",
                format!("{:.1} req/batch", net.mean_coalesced_requests),
                format!("{} reqs", net.requests),
                format!("{} batches", net.coalesced_batches),
                format!("{} errs", net.protocol_errors),
                format!("{} KiB out", net.bytes_out / 1024),
            );
        }
    }
}

/// The non-fatal stderr warning for an explicit `--threads` axis combined
/// with rows that pin their own thread count (committer- or
/// connection-sweep rows). Those rows silently ignore the flag, which is
/// intended — but worth saying out loud so a sweep run is never
/// misinterpreted.
fn threads_ignored_warning(explicit_threads: bool, pinned_labels: &[String]) -> Option<String> {
    if !explicit_threads || pinned_labels.is_empty() {
        return None;
    }
    Some(format!(
        "warning: --threads is ignored by the pinned sweep rows: {} \
(they run at their own committer/connection counts)",
        pinned_labels.join(", ")
    ))
}

fn run_gate(cli: &CliArgs) -> ExitCode {
    let baseline_path = cli
        .baseline
        .as_deref()
        .expect("gate mode requires --baseline");
    let current_path = cli.current.as_deref().unwrap_or(DEFAULT_REPORT_PATH);
    let gate_pct = cli.gate_pct.unwrap_or(10.0);
    let (baseline, current) = match (load_report(baseline_path), load_report(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("error: {err}");
            }
            return ExitCode::from(2);
        }
    };
    let outcome = diff_reports(&baseline, &current, gate_pct);
    println!("# gate: {current_path} vs baseline {baseline_path} (threshold {gate_pct}%)");
    print!("{outcome}");
    if outcome.has_regressions() {
        let n = outcome.regressions().count() + outcome.missing_in_current.len();
        eprintln!("gate FAILED: {n} regression(s) beyond {gate_pct}%");
        ExitCode::from(1)
    } else {
        println!("gate passed: no scenario regressed beyond {gate_pct}%");
        ExitCode::SUCCESS
    }
}

/// Streams the collected trace rings to `path` as Chrome trace-event JSON.
fn write_trace_file(path: &str) -> std::io::Result<()> {
    use std::io::Write;
    let file = std::fs::File::create(path)?;
    let mut writer = std::io::BufWriter::new(file);
    txobs::write_chrome_trace(&mut writer)?;
    writer.flush()
}

/// Publishes per-scenario results into the txobs exposition, so
/// `--metrics-out` carries the run's transaction counters next to the live
/// WAL/KV metrics.
fn publish_scenario_metrics(report: &BenchReport) {
    for s in &report.scenarios {
        let labels = [("scenario", s.name.as_str())];
        txobs::metrics::publish("tmbench_ops_per_sec", &labels, s.ops_per_sec);
        txobs::metrics::publish("tmbench_tx_commits", &labels, s.stats.tx_commits as f64);
        txobs::metrics::publish("tmbench_tx_aborts", &labels, s.stats.tx_aborts as f64);
        for (cause, rate) in s.abort_rates() {
            txobs::metrics::publish(
                "tmbench_abort_rate_per_sec",
                &[("scenario", s.name.as_str()), ("cause", cause)],
                rate,
            );
        }
    }
}

fn run_check_schema(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let problems = BenchReport::validate(&text);
    if problems.is_empty() {
        println!("{path}: schema OK");
        ExitCode::SUCCESS
    } else {
        eprintln!("{path}: schema INVALID");
        for p in &problems {
            eprintln!("  - {p}");
        }
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(err) => {
            eprintln!("error: {err}");
            return ExitCode::from(2);
        }
    };
    if cli.help {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &cli.check_schema {
        return run_check_schema(path);
    }
    if cli.baseline.is_some() {
        return run_gate(&cli);
    }

    let selection = MatrixSelection {
        threads: cli.threads.clone().unwrap_or_else(|| vec![1]),
        workload_families: cli.workloads.clone(),
        runtimes: cli.runtimes.clone(),
        fsync: cli.fsync,
        offered_load: cli.offered_load,
    };
    let scenarios = build_scenarios(&selection);
    if scenarios.is_empty() {
        eprintln!("error: the selected matrix is empty");
        return ExitCode::from(2);
    }
    if let Some(warning) =
        threads_ignored_warning(cli.threads.is_some(), &pinned_workload_labels(&scenarios))
    {
        eprintln!("{warning}");
    }
    if cli.list {
        for spec in &scenarios {
            println!("{}", spec.name());
        }
        return ExitCode::SUCCESS;
    }

    let config = workload_config(&cli);
    if cli.trace.is_some() {
        txobs::set_tracing(true);
        txobs::label_current_thread("tmbench-main");
    }
    let report = run_matrix(&scenarios, &config, cli.quick, |i, total, spec| {
        eprintln!("[{}/{}] {}", i + 1, total, spec.name());
    });
    print_report_table(&report);
    if let Some(path) = &cli.out {
        if let Err(e) = std::fs::write(path, report.to_json_string()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("wrote {path}");
    }
    if let Some(path) = &cli.trace {
        txobs::set_tracing(false);
        if let Err(e) = write_trace_file(path) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!(
            "wrote {path} ({} trace events dropped)",
            txobs::dropped_events()
        );
    }
    if let Some(path) = &cli.metrics_out {
        publish_scenario_metrics(&report);
        if let Err(e) = std::fs::write(path, txobs::metrics::metrics_text()) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offered_load_flag_parses_and_rejects_zero() {
        let args: Vec<String> = ["--offered-load", "25000"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(parse_args(&args).unwrap().offered_load, Some(25_000));
        let args: Vec<String> = ["--offered-load", "0"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(parse_args(&args).is_err());
        assert_eq!(parse_args(&[]).unwrap().offered_load, None);
    }

    #[test]
    fn pinned_rows_warn_only_with_an_explicit_thread_axis() {
        let pinned = vec![
            "kv-a-durable-c64".to_string(),
            "net-kv-a-durable-c64".to_string(),
        ];
        // No --threads: the pinned rows are just the matrix, nothing to say.
        assert_eq!(threads_ignored_warning(false, &pinned), None);
        // --threads but no pinned rows selected: nothing is ignored.
        assert_eq!(threads_ignored_warning(true, &[]), None);
        // Both: warn, naming every pinned row.
        let warning = threads_ignored_warning(true, &pinned).expect("must warn");
        assert!(warning.starts_with("warning:"), "{warning}");
        assert!(warning.contains("kv-a-durable-c64"), "{warning}");
        assert!(warning.contains("net-kv-a-durable-c64"), "{warning}");
    }
}
