//! Figure 1a — speed-up of TLSTM (2 and 4 tasks, 1 user-thread) over SwissTM
//! (1 thread) on the modified red-black-tree micro-benchmark, as a function of
//! the number of lookups per transaction.

use tlstm_bench::{cell, config_from_env, print_header};
use tlstm_workloads::rbtree_bench::fig1a_series;

fn main() {
    let config = config_from_env();
    let ops = [2u64, 4, 8, 16, 32, 64];
    print_header(
        "Figure 1a: red-black tree lookup transactions, 1 user-thread",
        &[
            "ops/txn",
            "swisstm(ops/s)",
            "tlstm2(ops/s)",
            "speedup2",
            "tlstm4(ops/s)",
            "speedup4",
        ],
    );
    let series2 = fig1a_series(&ops, 2, &config);
    let series4 = fig1a_series(&ops, 4, &config);
    for (p2, p4) in series2.iter().zip(series4.iter()) {
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}",
            p2.ops_per_txn,
            cell(p2.swisstm_ops_per_sec),
            cell(p2.tlstm_ops_per_sec),
            cell(p2.speedup()),
            cell(p4.tlstm_ops_per_sec),
            cell(p4.speedup()),
        );
    }
}
