//! Figure 2b — STMBench7 long traversals under the standard STMBench7 mixes
//! (write-dominated 10% reads, read-write 60%, read-dominated 90%):
//! SwissTM vs TLSTM with 3 and 9 tasks per thread, for 1–3 user-threads.

use tlstm_bench::{cell, config_from_env, print_header};
use tlstm_workloads::stmbench7::{fig2b_series, Stmbench7Params};

fn main() {
    let config = config_from_env();
    let base = Stmbench7Params::default();
    let read_pcts = [10u64, 60, 90];
    let threads = [1usize, 2, 3];
    print_header(
        "Figure 2b: STMBench7 long traversals, standard mixes",
        &[
            "read-only %",
            "threads",
            "swisstm(ops/s)",
            "tlstm-3(ops/s)",
            "tlstm-9(ops/s)",
        ],
    );
    for point in fig2b_series(&base, &read_pcts, &threads, &config) {
        println!(
            "{}\t{}\t{}\t{}\t{}",
            point.read_pct,
            point.threads,
            cell(point.swisstm),
            cell(point.tlstm_3),
            cell(point.tlstm_9),
        );
    }
}
