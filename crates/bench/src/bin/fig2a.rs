//! Figure 2a — STMBench7 long traversals: throughput of SwissTM with 1 and 3
//! threads vs TLSTM with 1 thread and 3 tasks, as the fraction of read-only
//! traversals varies.

use tlstm_bench::{cell, config_from_env, print_header};
use tlstm_workloads::stmbench7::{fig2a_series, Stmbench7Params};

fn main() {
    let config = config_from_env();
    let base = Stmbench7Params::default();
    let read_pcts = [0u64, 25, 50, 75, 100];
    print_header(
        "Figure 2a: STMBench7 long traversals",
        &[
            "read-only %",
            "swisstm-1(ops/s)",
            "swisstm-3(ops/s)",
            "tlstm-1x3(ops/s)",
        ],
    );
    for point in fig2a_series(&base, &read_pcts, &config) {
        println!(
            "{}\t{}\t{}\t{}",
            point.read_pct,
            cell(point.swisstm_1),
            cell(point.swisstm_3),
            cell(point.tlstm_1_3),
        );
    }
}
