//! Figure 1b — throughput of the modified STAMP Vacation benchmark
//! (8 operations per client transaction) for SwissTM, TLSTM with 1 task and
//! TLSTM with 2 tasks per transaction, as the number of clients grows, under
//! the low- and high-contention configurations.

use tlstm_bench::{cell, config_from_env, print_header};
use tlstm_workloads::vacation::{fig1b_series, VacationParams};

fn main() {
    let config = config_from_env();
    let clients: Vec<usize> = (1..=10).collect();
    for (label, params) in [
        ("low contention", VacationParams::low_contention()),
        ("high contention", VacationParams::high_contention()),
    ] {
        print_header(
            &format!("Figure 1b: Vacation, {label}"),
            &[
                "clients",
                "swisstm(ops/ms)",
                "tlstm-1(ops/ms)",
                "tlstm-2(ops/ms)",
            ],
        );
        for point in fig1b_series(&params, &clients, &config) {
            println!(
                "{}\t{}\t{}\t{}",
                point.clients,
                cell(point.swisstm_ops_per_ms),
                cell(point.tlstm1_ops_per_ms),
                cell(point.tlstm2_ops_per_ms),
            );
        }
        println!();
    }
}
