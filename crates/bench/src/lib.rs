//! Benchmark tooling for the TLSTM reproduction.
//!
//! Three layers live here:
//!
//! * [`report`] — the versioned JSON benchmark report (`BENCH_results.json`),
//!   its validation, and the baseline-diff regression gate;
//! * [`scenarios`] — the workload × runtime × thread × task matrix driven by
//!   the `tmbench` binary;
//! * [`json`] — the dependency-free JSON layer the report is built on.
//!
//! plus the helpers shared by the figure-regeneration binaries (`fig1a`,
//! `fig1b`, `fig2a`, `fig2b`), which print the same series the corresponding
//! figures of the paper plot as plain-text tables.

#![warn(missing_docs)]

use std::time::Duration;

use tlstm_workloads::WorkloadConfig;

pub mod json;
pub mod report;
pub mod scenarios;

/// Default measured duration per data point, in milliseconds, when neither
/// `TLSTM_BENCH_MS` nor a CLI flag overrides it.
pub const DEFAULT_BENCH_MS: u64 = 300;

/// Parses the raw value of the environment variable `name` as a `u64`,
/// falling back to `default` — loudly, on stderr — when the value is present
/// but malformed. Pass `raw = None` when the variable is unset (silent
/// fallback).
///
/// This is the single place the `TLSTM_BENCH_*` variables are interpreted;
/// the raw value is a parameter so the parsing rules are testable without
/// mutating the process environment.
pub fn parse_env_u64(name: &str, raw: Option<&str>, default: u64) -> u64 {
    match raw {
        None => default,
        Some(text) => match text.trim().parse::<u64>() {
            Ok(value) => value,
            Err(err) => {
                eprintln!(
                    "warning: ignoring malformed {name}={text:?} ({err}); using default {default}"
                );
                default
            }
        },
    }
}

/// Reads the environment variable `name` as a `u64` via [`parse_env_u64`].
pub fn env_u64(name: &str, default: u64) -> u64 {
    let raw = std::env::var(name).ok();
    parse_env_u64(name, raw.as_deref(), default)
}

/// Reads the environment variable `name` as a `u32` via [`env_u64`], warning
/// and falling back to `default` when the value exceeds `u32::MAX`.
pub fn env_u32(name: &str, default: u32) -> u32 {
    let value = env_u64(name, u64::from(default));
    u32::try_from(value).unwrap_or_else(|_| {
        eprintln!(
            "warning: {name}={value} exceeds {}; using default {default}",
            u32::MAX
        );
        default
    })
}

/// Builds the workload configuration used by the figure binaries and
/// `tmbench`.
///
/// The measured duration per data point defaults to [`DEFAULT_BENCH_MS`] and
/// can be overridden with the `TLSTM_BENCH_MS` environment variable; the
/// repetition count (the paper averages three runs) with `TLSTM_BENCH_REPS`.
/// Malformed values fall back to the defaults with a warning on stderr.
pub fn config_from_env() -> WorkloadConfig {
    let ms = env_u64("TLSTM_BENCH_MS", DEFAULT_BENCH_MS);
    let reps = env_u32("TLSTM_BENCH_REPS", 1);
    WorkloadConfig {
        duration: Duration::from_millis(ms),
        repetitions: reps,
        seed: 0xC0FFEE,
    }
}

/// Prints a table header followed by a separator line.
pub fn print_header(title: &str, columns: &[&str]) {
    println!("# {title}");
    println!("{}", columns.join("\t"));
}

/// Formats a floating-point cell with sensible precision for throughput.
pub fn cell(value: f64) -> String {
    if value >= 1000.0 {
        format!("{value:.0}")
    } else {
        format!("{value:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlstm_testutil::EnvVarGuard;

    #[test]
    fn env_defaults_are_sane() {
        let _lock = EnvVarGuard::lock_only();
        let cfg = config_from_env();
        assert!(cfg.duration >= Duration::from_millis(1));
        assert!(cfg.repetitions >= 1);
    }

    #[test]
    fn parse_env_u64_accepts_valid_values() {
        assert_eq!(parse_env_u64("X", Some("150"), 300), 150);
        assert_eq!(
            parse_env_u64("X", Some(" 42 "), 300),
            42,
            "whitespace tolerated"
        );
        assert_eq!(
            parse_env_u64("X", None, 300),
            300,
            "unset falls back silently"
        );
    }

    #[test]
    fn parse_env_u64_warns_and_defaults_on_malformed_values() {
        for bad in ["abc", "", "12ms", "-5", "1.5"] {
            assert_eq!(parse_env_u64("TLSTM_BENCH_MS", Some(bad), 300), 300);
        }
    }

    #[test]
    fn config_from_env_survives_malformed_environment() {
        let _ms = EnvVarGuard::set("TLSTM_BENCH_MS", "not-a-number");
        let _reps = EnvVarGuard::set_unlocked("TLSTM_BENCH_REPS", "3");
        let cfg = config_from_env();
        assert_eq!(cfg.duration, Duration::from_millis(DEFAULT_BENCH_MS));
        assert_eq!(cfg.repetitions, 3);
    }

    #[test]
    fn env_u32_rejects_overflowing_values() {
        let _reps = EnvVarGuard::set("TLSTM_BENCH_REPS", "4294967296");
        assert_eq!(env_u32("TLSTM_BENCH_REPS", 1), 1, "overflow falls back");
        drop(_reps);
        let _reps = EnvVarGuard::set("TLSTM_BENCH_REPS", "7");
        assert_eq!(env_u32("TLSTM_BENCH_REPS", 1), 7);
    }

    #[test]
    fn cell_formatting() {
        assert_eq!(cell(12345.6), "12346");
        assert_eq!(cell(3.25159), "3.25");
        // Either side of the precision switchover.
        assert_eq!(cell(999.994), "999.99");
        assert_eq!(cell(1000.0), "1000");
    }
}
