//! Helpers shared by the figure-regeneration binaries of the TLSTM
//! reproduction (`fig1a`, `fig1b`, `fig2a`, `fig2b`).
//!
//! Each binary prints the same series the corresponding figure of the paper
//! plots, as a plain-text table that can be redirected into EXPERIMENTS.md.

#![warn(missing_docs)]

use std::time::Duration;

use tlstm_workloads::WorkloadConfig;

/// Builds the workload configuration used by the figure binaries.
///
/// The measured duration per data point defaults to 300 ms and can be
/// overridden with the `TLSTM_BENCH_MS` environment variable; the repetition
/// count (the paper averages three runs) with `TLSTM_BENCH_REPS`.
pub fn config_from_env() -> WorkloadConfig {
    let ms = std::env::var("TLSTM_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(300);
    let reps = std::env::var("TLSTM_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(1);
    WorkloadConfig {
        duration: Duration::from_millis(ms),
        repetitions: reps,
        seed: 0xC0FFEE,
    }
}

/// Prints a table header followed by a separator line.
pub fn print_header(title: &str, columns: &[&str]) {
    println!("# {title}");
    println!("{}", columns.join("\t"));
}

/// Formats a floating-point cell with sensible precision for throughput.
pub fn cell(value: f64) -> String {
    if value >= 1000.0 {
        format!("{value:.0}")
    } else {
        format!("{value:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_defaults_are_sane() {
        let cfg = config_from_env();
        assert!(cfg.duration >= Duration::from_millis(1));
        assert!(cfg.repetitions >= 1);
    }

    #[test]
    fn cell_formatting() {
        assert_eq!(cell(12345.6), "12346");
        assert_eq!(cell(3.25159), "3.25");
        // Either side of the precision switchover.
        assert_eq!(cell(999.994), "999.99");
        assert_eq!(cell(1000.0), "1000");
    }
}
