//! The modified red-black-tree micro-benchmark (Figure 1a).
//!
//! One user-thread repeatedly runs a transaction that performs `N` read-only
//! lookups on a shared red-black tree. Under SwissTM the transaction is
//! executed as-is; under TLSTM it is split into `k` tasks of `N / k` lookups
//! each. The paper reports the speed-up of TLSTM-2 and TLSTM-4 over SwissTM
//! for `N ∈ {2, 4, 8, 16, 32, 64}`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use swisstm::SwisstmRuntime;
use tlstm::{TaskCtx, TlstmRuntime, TxnSpec};
use txcollections::TxRbTree;
use txmem::{Abort, TxConfig, TxMem};

use crate::harness::{
    average_metrics, run_threads_metrics, DetRng, RunMetrics, Throughput, WorkloadConfig,
};

/// Parameters of the red-black-tree micro-benchmark.
#[derive(Debug, Clone)]
pub struct RbTreeBenchParams {
    /// Number of keys pre-loaded into the tree.
    pub initial_keys: u64,
    /// Key space the lookups draw from (twice `initial_keys` gives ~50% hit
    /// rate, as in the classic micro-benchmark).
    pub key_space: u64,
    /// Lookups per transaction (`N`, the x-axis of Figure 1a).
    pub ops_per_txn: u64,
    /// Tasks the transaction is split into (1 = plain SwissTM behaviour).
    pub tasks_per_txn: usize,
    /// Number of user-threads (Figure 1a uses one).
    pub threads: usize,
}

impl Default for RbTreeBenchParams {
    fn default() -> Self {
        RbTreeBenchParams {
            initial_keys: 4096,
            key_space: 8192,
            ops_per_txn: 16,
            tasks_per_txn: 2,
            threads: 1,
        }
    }
}

impl RbTreeBenchParams {
    fn substrate_config(&self) -> TxConfig {
        TxConfig {
            spec_depth: self.tasks_per_txn.max(1),
            ..TxConfig::default()
        }
    }
}

/// Pre-loads a tree with `initial_keys` evenly spread keys.
fn populate<M: TxMem>(mem: &mut M, params: &RbTreeBenchParams) -> Result<TxRbTree, Abort> {
    let tree = TxRbTree::create(mem)?;
    let stride = (params.key_space / params.initial_keys).max(1);
    for i in 0..params.initial_keys {
        tree.insert(mem, i * stride, i)?;
    }
    Ok(tree)
}

/// The per-transaction lookup batch, written once against `TxMem` so the same
/// code runs on both runtimes.
fn lookup_batch<M: TxMem>(mem: &mut M, tree: TxRbTree, keys: &[u64]) -> Result<(), Abort> {
    for &key in keys {
        let _ = tree.get(mem, key)?;
    }
    Ok(())
}

/// Generates the keys of one transaction.
fn txn_keys(rng: &mut DetRng, params: &RbTreeBenchParams) -> Vec<u64> {
    (0..params.ops_per_txn)
        .map(|_| rng.below(params.key_space))
        .collect()
}

/// Measures the benchmark on the SwissTM baseline, with per-transaction
/// latencies and the runtime's statistics breakdown.
pub fn measure_swisstm(params: &RbTreeBenchParams, config: &WorkloadConfig) -> RunMetrics {
    average_metrics(config.repetitions, |rep| {
        let runtime = SwisstmRuntime::new(params.substrate_config());
        let tree = populate(&mut runtime.direct(), params).expect("populate cannot abort");
        let (throughput, latency) = run_threads_metrics(
            params.threads,
            config.duration,
            |thread_index, stop, ops, hist| {
                let mut thread = runtime.register_thread();
                let mut rng =
                    DetRng::new(config.seed ^ (thread_index as u64 + 1) ^ (u64::from(rep) << 32));
                while !stop.load(Ordering::Relaxed) {
                    let keys = txn_keys(&mut rng, params);
                    let t0 = std::time::Instant::now();
                    thread.atomic(|tx| lookup_batch(tx, tree, &keys));
                    hist.record(t0.elapsed());
                    ops.fetch_add(params.ops_per_txn, Ordering::Relaxed);
                }
            },
        );
        RunMetrics::new(throughput, latency, runtime.stats())
    })
}

/// Measures the benchmark on the SwissTM baseline.
pub fn run_swisstm(params: &RbTreeBenchParams, config: &WorkloadConfig) -> Throughput {
    measure_swisstm(params, config).throughput
}

/// Measures the benchmark on TLSTM with `tasks_per_txn` tasks per transaction,
/// with per-transaction latencies and the runtime's statistics breakdown.
pub fn measure_tlstm(params: &RbTreeBenchParams, config: &WorkloadConfig) -> RunMetrics {
    average_metrics(config.repetitions, |rep| {
        let runtime = TlstmRuntime::new(params.substrate_config());
        let tree = populate(&mut runtime.direct(), params).expect("populate cannot abort");
        let (throughput, latency) = run_threads_metrics(
            params.threads,
            config.duration,
            |thread_index, stop, ops, hist| {
                let uthread = runtime.register_uthread(params.tasks_per_txn.max(1));
                let mut rng =
                    DetRng::new(config.seed ^ (thread_index as u64 + 1) ^ (u64::from(rep) << 32));
                while !stop.load(Ordering::Relaxed) {
                    let keys = Arc::new(txn_keys(&mut rng, params));
                    let spec = split_into_tasks(tree, &keys, params.tasks_per_txn);
                    let t0 = std::time::Instant::now();
                    uthread.execute(vec![spec]);
                    hist.record(t0.elapsed());
                    ops.fetch_add(params.ops_per_txn, Ordering::Relaxed);
                }
            },
        );
        RunMetrics::new(throughput, latency, runtime.stats())
    })
}

/// Measures the benchmark on TLSTM with `tasks_per_txn` tasks per transaction.
pub fn run_tlstm(params: &RbTreeBenchParams, config: &WorkloadConfig) -> Throughput {
    measure_tlstm(params, config).throughput
}

/// Splits the transaction's lookups into `tasks` equally sized tasks.
fn split_into_tasks(tree: TxRbTree, keys: &Arc<Vec<u64>>, tasks: usize) -> TxnSpec {
    let tasks = tasks.max(1);
    let chunk = keys.len().div_ceil(tasks).max(1);
    let mut bodies = Vec::with_capacity(tasks);
    for t in 0..tasks {
        let keys = Arc::clone(keys);
        let lo = (t * chunk).min(keys.len());
        let hi = ((t + 1) * chunk).min(keys.len());
        bodies.push(tlstm::task(move |ctx: &mut TaskCtx<'_>| {
            lookup_batch(ctx, tree, &keys[lo..hi])
        }));
    }
    TxnSpec::new(bodies)
}

/// One row of the Figure 1a series: lookups per transaction and the measured
/// speed-up of TLSTM over SwissTM.
#[derive(Debug, Clone, Copy)]
pub struct Fig1aPoint {
    /// Lookups per transaction (`N`).
    pub ops_per_txn: u64,
    /// SwissTM throughput (lookups per second).
    pub swisstm_ops_per_sec: f64,
    /// TLSTM throughput (lookups per second).
    pub tlstm_ops_per_sec: f64,
}

impl Fig1aPoint {
    /// TLSTM speed-up over SwissTM.
    pub fn speedup(&self) -> f64 {
        if self.swisstm_ops_per_sec == 0.0 {
            0.0
        } else {
            self.tlstm_ops_per_sec / self.swisstm_ops_per_sec
        }
    }
}

/// Regenerates one Figure 1a series (one TLSTM task count across the
/// transaction sizes).
pub fn fig1a_series(
    ops_per_txn_values: &[u64],
    tasks_per_txn: usize,
    config: &WorkloadConfig,
) -> Vec<Fig1aPoint> {
    ops_per_txn_values
        .iter()
        .map(|&ops_per_txn| {
            let params = RbTreeBenchParams {
                ops_per_txn,
                tasks_per_txn,
                ..Default::default()
            };
            let swisstm = run_swisstm(
                &RbTreeBenchParams {
                    tasks_per_txn: 1,
                    ..params.clone()
                },
                config,
            );
            let tlstm = run_tlstm(&params, config);
            Fig1aPoint {
                ops_per_txn,
                swisstm_ops_per_sec: swisstm.ops_per_sec(),
                tlstm_ops_per_sec: tlstm.ops_per_sec(),
            }
        })
        .collect()
}

/// Quick correctness cross-check used by tests: the same lookup stream returns
/// the same hit count on both runtimes.
pub fn crosscheck_hit_counts(params: &RbTreeBenchParams, txns: u64, seed: u64) -> (u64, u64) {
    // SwissTM side.
    let sw_hits = {
        let runtime = SwisstmRuntime::new(params.substrate_config());
        let tree = populate(&mut runtime.direct(), params).expect("populate cannot abort");
        let mut thread = runtime.register_thread();
        let mut rng = DetRng::new(seed);
        let mut hits = 0u64;
        for _ in 0..txns {
            let keys = txn_keys(&mut rng, params);
            hits += thread.atomic(|tx| {
                let mut h = 0u64;
                for &k in &keys {
                    if tree.get(tx, k)?.is_some() {
                        h += 1;
                    }
                }
                Ok(h)
            });
        }
        hits
    };
    // TLSTM side: each task writes its hit count into a per-task result slot;
    // the slot is *stored* (not added to) so re-executed attempts cannot
    // over-count, and the driver sums the slots only after the transaction
    // has committed.
    let tl_hits = {
        let runtime = TlstmRuntime::new(params.substrate_config());
        let tree = populate(&mut runtime.direct(), params).expect("populate cannot abort");
        let uthread = runtime.register_uthread(params.tasks_per_txn.max(1));
        let mut rng = DetRng::new(seed);
        let mut total = 0u64;
        for _ in 0..txns {
            let keys = Arc::new(txn_keys(&mut rng, params));
            let tasks = params.tasks_per_txn.max(1);
            let chunk = keys.len().div_ceil(tasks).max(1);
            let mut bodies = Vec::new();
            let mut slots = Vec::new();
            for t in 0..tasks {
                let keys = Arc::clone(&keys);
                let lo = (t * chunk).min(keys.len());
                let hi = ((t + 1) * chunk).min(keys.len());
                let slot = Arc::new(AtomicU64::new(0));
                slots.push(Arc::clone(&slot));
                bodies.push(tlstm::task(move |ctx: &mut TaskCtx<'_>| {
                    let mut h = 0u64;
                    for &k in &keys[lo..hi] {
                        if tree.get(ctx, k)?.is_some() {
                            h += 1;
                        }
                    }
                    slot.store(h, Ordering::Relaxed);
                    Ok(())
                }));
            }
            uthread.execute(vec![TxnSpec::new(bodies)]);
            total += slots.iter().map(|s| s.load(Ordering::Relaxed)).sum::<u64>();
        }
        total
    };
    (sw_hits, tl_hits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RbTreeBenchParams {
        RbTreeBenchParams {
            initial_keys: 128,
            key_space: 256,
            ops_per_txn: 8,
            tasks_per_txn: 2,
            threads: 1,
        }
    }

    #[test]
    fn both_runtimes_make_progress() {
        let config = WorkloadConfig::quick();
        let params = tiny();
        let sw = run_swisstm(&params, &config);
        let tl = run_tlstm(&params, &config);
        assert!(sw.ops > 0, "SwissTM made no progress");
        assert!(tl.ops > 0, "TLSTM made no progress");
    }

    #[test]
    fn identical_streams_return_identical_hit_counts() {
        let params = tiny();
        let (sw, tl) = crosscheck_hit_counts(&params, 20, 99);
        assert_eq!(sw, tl);
        assert!(sw > 0, "the stream should hit at least once");
    }

    #[test]
    fn fig1a_series_has_one_point_per_requested_size() {
        let config = WorkloadConfig::quick();
        let points = fig1a_series(&[2, 8], 2, &config);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.swisstm_ops_per_sec > 0.0);
            assert!(p.tlstm_ops_per_sec > 0.0);
            assert!(p.speedup() > 0.0);
        }
    }

    #[test]
    fn split_into_tasks_covers_all_keys() {
        let cfg = TxConfig::small();
        let rt = TlstmRuntime::new(cfg);
        let tree = populate(&mut rt.direct(), &tiny()).unwrap();
        let keys = Arc::new(vec![1u64, 2, 3, 4, 5]);
        let spec = split_into_tasks(tree, &keys, 2);
        assert_eq!(spec.len(), 2);
        let spec = split_into_tasks(tree, &keys, 4);
        assert_eq!(spec.len(), 4);
    }
}
