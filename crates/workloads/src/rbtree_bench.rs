//! The modified red-black-tree micro-benchmark (Figure 1a).
//!
//! One user-thread repeatedly runs a transaction that performs `N` read-only
//! lookups on a shared red-black tree. Under SwissTM the transaction is
//! executed as-is; under TLSTM it is split into `k` tasks of `N / k` lookups
//! each. The paper reports the speed-up of TLSTM-2 and TLSTM-4 over SwissTM
//! for `N ∈ {2, 4, 8, 16, 32, 64}`.
//!
//! The whole benchmark is written once against [`TxRuntime`]: a speculative
//! runtime receives the transaction as a task group (one task per key chunk),
//! sequential runtimes run the whole lookup batch as one body.

use std::sync::atomic::Ordering;

use swisstm::SwisstmRuntime;
use tlstm::TlstmRuntime;
use txcollections::TxRbTree;
use txmem::{run_boxed_tasks, Abort, BoxedTaskBody, TxConfig, TxMem, TxRuntime, TxSession};

use crate::harness::{
    average_metrics, chunk_ranges, run_threads_metrics, DetRng, RunMetrics, Throughput,
    WorkloadConfig,
};

/// Parameters of the red-black-tree micro-benchmark.
#[derive(Debug, Clone)]
pub struct RbTreeBenchParams {
    /// Number of keys pre-loaded into the tree.
    pub initial_keys: u64,
    /// Key space the lookups draw from (twice `initial_keys` gives ~50% hit
    /// rate, as in the classic micro-benchmark).
    pub key_space: u64,
    /// Lookups per transaction (`N`, the x-axis of Figure 1a).
    pub ops_per_txn: u64,
    /// Tasks the transaction is split into (1 = plain SwissTM behaviour;
    /// ignored by non-speculative runtimes).
    pub tasks_per_txn: usize,
    /// Number of user-threads (Figure 1a uses one).
    pub threads: usize,
}

impl Default for RbTreeBenchParams {
    fn default() -> Self {
        RbTreeBenchParams {
            initial_keys: 4096,
            key_space: 8192,
            ops_per_txn: 16,
            tasks_per_txn: 2,
            threads: 1,
        }
    }
}

impl RbTreeBenchParams {
    fn substrate_config(&self) -> TxConfig {
        TxConfig {
            spec_depth: self.tasks_per_txn.max(1),
            ..TxConfig::default()
        }
    }

    /// The task count a runtime actually uses for this parameter set.
    fn tasks_for<R: TxRuntime>(&self) -> usize {
        if R::SPECULATIVE {
            self.tasks_per_txn.max(1)
        } else {
            1
        }
    }
}

/// Pre-loads a tree with `initial_keys` evenly spread keys.
fn populate<M: TxMem + ?Sized>(mem: &mut M, params: &RbTreeBenchParams) -> Result<TxRbTree, Abort> {
    let tree = TxRbTree::create(mem)?;
    let stride = (params.key_space / params.initial_keys).max(1);
    for i in 0..params.initial_keys {
        tree.insert(mem, i * stride, i)?;
    }
    Ok(tree)
}

/// The per-transaction lookup batch, written once against `TxMem` so the same
/// code runs on every runtime.
fn lookup_batch<M: TxMem + ?Sized>(mem: &mut M, tree: TxRbTree, keys: &[u64]) -> Result<(), Abort> {
    for &key in keys {
        let _ = tree.get(mem, key)?;
    }
    Ok(())
}

/// Generates the keys of one transaction.
fn txn_keys(rng: &mut DetRng, params: &RbTreeBenchParams) -> Vec<u64> {
    (0..params.ops_per_txn)
        .map(|_| rng.below(params.key_space))
        .collect()
}

/// Measures the benchmark on any [`TxRuntime`], with per-transaction
/// latencies and the runtime's statistics breakdown.
pub fn measure<R: TxRuntime>(params: &RbTreeBenchParams, config: &WorkloadConfig) -> RunMetrics {
    average_metrics(config.repetitions, |rep| {
        let runtime = R::new(params.substrate_config());
        let tree = populate(&mut runtime.direct(), params).expect("populate cannot abort");
        let (throughput, latency) = run_threads_metrics(
            params.threads,
            config.duration,
            |thread_index, stop, ops, hist| {
                let tasks = params.tasks_for::<R>();
                let mut session = runtime.session();
                let mut rng =
                    DetRng::new(config.seed ^ (thread_index as u64 + 1) ^ (u64::from(rep) << 32));
                while !stop.load(Ordering::Relaxed) {
                    let keys = txn_keys(&mut rng, params);
                    let t0 = std::time::Instant::now();
                    if tasks <= 1 {
                        session.run(|mem| lookup_batch(mem, tree, &keys));
                    } else {
                        let keys = &keys;
                        let mut bodies: Vec<BoxedTaskBody<'_>> = chunk_ranges(keys.len(), tasks)
                            .into_iter()
                            .map(|(lo, hi)| {
                                Box::new(move |mem: &mut dyn TxMem| {
                                    lookup_batch(mem, tree, &keys[lo..hi])
                                }) as BoxedTaskBody<'_>
                            })
                            .collect();
                        run_boxed_tasks(&mut session, &mut bodies);
                    }
                    hist.record(t0.elapsed());
                    ops.fetch_add(params.ops_per_txn, Ordering::Relaxed);
                }
            },
        );
        RunMetrics::new(throughput, latency, runtime.stats())
    })
}

/// Measures the benchmark on any [`TxRuntime`], returning just the
/// throughput.
pub fn run<R: TxRuntime>(params: &RbTreeBenchParams, config: &WorkloadConfig) -> Throughput {
    measure::<R>(params, config).throughput
}

/// One row of the Figure 1a series: lookups per transaction and the measured
/// speed-up of TLSTM over SwissTM.
#[derive(Debug, Clone, Copy)]
pub struct Fig1aPoint {
    /// Lookups per transaction (`N`).
    pub ops_per_txn: u64,
    /// SwissTM throughput (lookups per second).
    pub swisstm_ops_per_sec: f64,
    /// TLSTM throughput (lookups per second).
    pub tlstm_ops_per_sec: f64,
}

impl Fig1aPoint {
    /// TLSTM speed-up over SwissTM.
    pub fn speedup(&self) -> f64 {
        if self.swisstm_ops_per_sec == 0.0 {
            0.0
        } else {
            self.tlstm_ops_per_sec / self.swisstm_ops_per_sec
        }
    }
}

/// Regenerates one Figure 1a series (one TLSTM task count across the
/// transaction sizes).
pub fn fig1a_series(
    ops_per_txn_values: &[u64],
    tasks_per_txn: usize,
    config: &WorkloadConfig,
) -> Vec<Fig1aPoint> {
    ops_per_txn_values
        .iter()
        .map(|&ops_per_txn| {
            let params = RbTreeBenchParams {
                ops_per_txn,
                tasks_per_txn,
                ..Default::default()
            };
            let swisstm = run::<SwisstmRuntime>(
                &RbTreeBenchParams {
                    tasks_per_txn: 1,
                    ..params.clone()
                },
                config,
            );
            let tlstm = run::<TlstmRuntime>(&params, config);
            Fig1aPoint {
                ops_per_txn,
                swisstm_ops_per_sec: swisstm.ops_per_sec(),
                tlstm_ops_per_sec: tlstm.ops_per_sec(),
            }
        })
        .collect()
}

/// Correctness cross-check used by tests: runs `txns` deterministic lookup
/// transactions and returns the total hit count. The same `(params, seed)`
/// pair must produce the same count on every runtime — each task writes its
/// hit count into a per-task result slot that is *stored* (not added to), so
/// re-executed speculative attempts cannot over-count.
pub fn hit_count<R: TxRuntime>(params: &RbTreeBenchParams, txns: u64, seed: u64) -> u64 {
    let runtime = R::new(params.substrate_config());
    let tree = populate(&mut runtime.direct(), params).expect("populate cannot abort");
    let mut session = runtime.session();
    let mut rng = DetRng::new(seed);
    let tasks = params.tasks_for::<R>();
    let mut total = 0u64;
    for _ in 0..txns {
        let keys = txn_keys(&mut rng, params);
        let mut slots = vec![0u64; tasks];
        {
            let keys = &keys;
            let ranges = chunk_ranges(keys.len(), tasks);
            let mut bodies: Vec<BoxedTaskBody<'_>> = slots
                .iter_mut()
                .zip(ranges)
                .map(|(slot, (lo, hi))| {
                    Box::new(move |mem: &mut dyn TxMem| {
                        let mut h = 0u64;
                        for &k in &keys[lo..hi] {
                            if tree.get(mem, k)?.is_some() {
                                h += 1;
                            }
                        }
                        *slot = h;
                        Ok(())
                    }) as BoxedTaskBody<'_>
                })
                .collect();
            run_boxed_tasks(&mut session, &mut bodies);
        }
        total += slots.iter().sum::<u64>();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmem::SeqRefRuntime;

    fn tiny() -> RbTreeBenchParams {
        RbTreeBenchParams {
            initial_keys: 128,
            key_space: 256,
            ops_per_txn: 8,
            tasks_per_txn: 2,
            threads: 1,
        }
    }

    #[test]
    fn every_runtime_makes_progress() {
        let config = WorkloadConfig::quick();
        let params = tiny();
        assert!(run::<SwisstmRuntime>(&params, &config).ops > 0);
        assert!(run::<TlstmRuntime>(&params, &config).ops > 0);
        assert!(run::<SeqRefRuntime>(&params, &config).ops > 0);
    }

    #[test]
    fn identical_streams_return_identical_hit_counts_on_all_runtimes() {
        let params = tiny();
        let sw = hit_count::<SwisstmRuntime>(&params, 20, 99);
        let tl = hit_count::<TlstmRuntime>(&params, 20, 99);
        let sq = hit_count::<SeqRefRuntime>(&params, 20, 99);
        assert_eq!(sw, tl);
        assert_eq!(sw, sq);
        assert!(sw > 0, "the stream should hit at least once");
    }

    #[test]
    fn fig1a_series_has_one_point_per_requested_size() {
        let config = WorkloadConfig::quick();
        let points = fig1a_series(&[2, 8], 2, &config);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.swisstm_ops_per_sec > 0.0);
            assert!(p.tlstm_ops_per_sec > 0.0);
            assert!(p.speedup() > 0.0);
        }
    }

    #[test]
    fn chunk_ranges_cover_all_keys_without_overlap() {
        for (len, tasks) in [(5usize, 2usize), (5, 4), (8, 3), (1, 4), (6, 1)] {
            let ranges = chunk_ranges(len, tasks);
            assert_eq!(ranges.len(), tasks);
            let mut covered = 0;
            for &(lo, hi) in &ranges {
                assert!(lo <= hi && hi <= len);
                assert_eq!(lo, covered, "ranges must be contiguous");
                covered = hi;
            }
            assert_eq!(covered, len, "ranges must cover every key");
        }
    }
}
