//! The KV serving workload driven **over the wire**: a multi-connection
//! open-loop load generator against a loopback [`txnet::NetServer`].
//!
//! Where [`crate::kv`] measures in-process sessions (one thread = one
//! session, closed loop), this module measures the full serving pipeline:
//! frame encode → TCP → poll-loop decode → **server-side coalescing** into
//! one store batch → reply fan-out → TCP → frame decode. The client side is
//! open-loop: each connection keeps up to [`NetKvParams::max_in_flight`]
//! pipelined requests outstanding and, when [`NetKvParams::offered_load`] is
//! set, issues them on a fixed schedule *regardless of reply progress* — so
//! measured latency includes queueing delay and rises sharply past the
//! saturation point, which is the tail-latency-vs-offered-load curve the
//! report's sweep rows plot.
//!
//! Reported *operations* are the [`txkv::KvOp`]s of acknowledged replies
//! only.
//! When the window closes the generator stops issuing but keeps draining
//! replies to already-sent requests for a bounded grace period
//! (`TAIL_DRAIN_BUDGET`) — open-loop accounting counts work *issued* inside
//! the window once the server acknowledges it, and the harness measures
//! elapsed time after the drain, so throughput stays honest even when one
//! coalesced durable batch outlives a short measurement window.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tlstm_testutil::TempDir;
use txkv::{DurableKvConfig, DurableKvStore, KvServer};
use txmem::TxRuntime;
use txnet::{NetClient, NetError, NetServer, NetServerConfig};

use crate::harness::{
    average_metrics, run_threads_metrics, DetRng, LatencyHistogram, RunMetrics, WorkloadConfig,
};
use crate::kv::{generate_batch, initial_value, KeyDist, KvParams};

/// How long a drained connection waits for a not-yet-ready reply before the
/// generator moves on to its other connections (the client-side poll
/// cadence).
const DRAIN_TIMEOUT: Duration = Duration::from_micros(200);

/// How long the generator keeps draining in-flight replies after the
/// measurement window closes. Bounds the tail at a few coalesced durable
/// batches; anything still unacknowledged afterwards is discarded.
const TAIL_DRAIN_BUDGET: Duration = Duration::from_secs(2);

/// Parameters of the networked KV serving workload.
#[derive(Debug, Clone)]
pub struct NetKvParams {
    /// The store-side parameters: mix, key space, batch size, shards, and
    /// (via [`KvParams::durable`]) whether the server front-ends a
    /// [`DurableKvStore`]. [`KvParams::threads`] is ignored — the network
    /// workload's concurrency axis is `connections`.
    pub kv: KvParams,
    /// Client connections to open (the offered-concurrency axis; pinned
    /// `-cN` scenario rows fix this the way `kv-a-durable-cN` pins
    /// committers).
    pub connections: usize,
    /// OS threads driving those connections (0 = one per connection, capped
    /// at 4 — the generator is I/O-bound, not CPU-bound).
    pub client_threads: usize,
    /// Open-loop window: pipelined requests outstanding per connection
    /// before the generator stops issuing on that connection.
    pub max_in_flight: usize,
    /// `Some(r)`: issue `r` requests/second in total across all connections
    /// (open loop — send times are scheduled, not reply-gated). `None`:
    /// keep every window full (peak-throughput mode).
    pub offered_load: Option<u64>,
    /// Serving threads of the loopback server. Coalescing happens *within*
    /// one serving thread, so 1 gives the widest coalescing domain.
    pub server_threads: usize,
}

impl NetKvParams {
    /// The standard parameterisation over a [`KvParams::mix`] store.
    pub fn new(kv: KvParams) -> Self {
        NetKvParams {
            kv,
            connections: 16,
            client_threads: 0,
            max_in_flight: 8,
            offered_load: None,
            server_threads: 1,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn tiny(kv: KvParams) -> Self {
        NetKvParams {
            kv,
            connections: 4,
            client_threads: 2,
            max_in_flight: 4,
            offered_load: None,
            server_threads: 1,
        }
    }

    fn resolved_client_threads(&self) -> usize {
        match self.client_threads {
            0 => self.connections.clamp(1, 4),
            n => n.min(self.connections.max(1)),
        }
    }
}

/// One connection's generator state: the client plus its outstanding
/// requests (send time and op count, keyed by request-id).
struct OpenLoopConn {
    client: NetClient,
    rng: DetRng,
    in_flight: HashMap<u64, (Instant, u64)>,
}

impl OpenLoopConn {
    /// `true` if the transport says "no reply ready yet" rather than
    /// "something broke".
    fn is_drain_timeout(error: &NetError) -> bool {
        matches!(
            error,
            NetError::Io(e) if matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock)
        )
    }

    /// Collects one ready reply, recording its latency and op count.
    /// Returns `false` when no reply arrived within [`DRAIN_TIMEOUT`].
    fn drain_one(&mut self, hist: &mut LatencyHistogram, ops: &AtomicU64) -> bool {
        match self.client.recv() {
            Ok((req_id, result)) => {
                let replies = result.expect("server answered the bench with a typed error");
                let (t0, n) = self
                    .in_flight
                    .remove(&req_id)
                    .expect("reply for an unknown request-id");
                debug_assert_eq!(replies.len() as u64, n);
                hist.record(t0.elapsed());
                ops.fetch_add(n, Ordering::Relaxed);
                true
            }
            Err(e) if Self::is_drain_timeout(&e) => false,
            Err(e) => panic!("load generator transport failed: {e:?}"),
        }
    }
}

fn drive_connections(
    params: &NetKvParams,
    addr: std::net::SocketAddr,
    config: &WorkloadConfig,
    rep: u32,
    dist: &KeyDist,
) -> (crate::harness::Throughput, crate::harness::LatencyHistogram) {
    let client_threads = params.resolved_client_threads();
    run_threads_metrics(
        client_threads,
        config.duration,
        |thread, stop, ops, hist| {
            // This thread owns every `client_threads`-th connection.
            let mut conns: Vec<OpenLoopConn> = (thread..params.connections)
                .step_by(client_threads)
                .map(|conn_index| {
                    let mut client =
                        NetClient::connect(addr).expect("load generator connect failed");
                    client
                        .set_read_timeout(Some(DRAIN_TIMEOUT))
                        .expect("setting the drain timeout failed");
                    OpenLoopConn {
                        client,
                        rng: DetRng::new(
                            config.seed ^ (conn_index as u64 + 1) ^ (u64::from(rep) << 32),
                        ),
                        in_flight: HashMap::new(),
                    }
                })
                .collect();
            if conns.is_empty() {
                return;
            }
            // Open-loop pacing: this thread's share of the offered load.
            let interarrival = params.offered_load.map(|rate| {
                let per_thread = (rate as f64 / client_threads as f64).max(1.0);
                Duration::from_secs_f64(1.0 / per_thread)
            });
            let mut next_send = Instant::now();
            let mut cursor = 0usize;
            while !stop.load(Ordering::Relaxed) {
                // 1. Issue: fill windows (peak mode) or follow the schedule
                // (paced mode). Paced sends round-robin across connections.
                loop {
                    if let Some(gap) = interarrival {
                        let now = Instant::now();
                        if now < next_send {
                            break;
                        }
                        // After a stall, re-anchor rather than bursting the
                        // entire backlog at once.
                        if now > next_send + Duration::from_millis(100) {
                            next_send = now;
                        }
                        next_send += gap;
                    }
                    let Some(conn) = (0..conns.len())
                        .map(|i| (cursor + i) % conns.len())
                        .find(|&i| conns[i].in_flight.len() < params.max_in_flight)
                    else {
                        // Every window is full: offered load exceeds service
                        // rate; the open loop sheds by skipping the slot.
                        break;
                    };
                    cursor = (conn + 1) % conns.len();
                    let conn = &mut conns[conn];
                    let batch = generate_batch(&mut conn.rng, dist, &params.kv);
                    let n = batch.len() as u64;
                    let req_id = conn.client.send(&batch).expect("request send failed");
                    conn.in_flight.insert(req_id, (Instant::now(), n));
                    if interarrival.is_none() {
                        // Peak mode: keep filling until every window is full.
                        if conns
                            .iter()
                            .all(|c| c.in_flight.len() >= params.max_in_flight)
                        {
                            break;
                        }
                    } else if stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                // 2. Drain: collect whatever replies are ready on each
                // connection with outstanding requests.
                for conn in &mut conns {
                    while !conn.in_flight.is_empty() && conn.drain_one(hist, ops) {}
                }
            }
            // 3. Tail drain: the window closed, but requests issued inside it
            // are still being served (one coalesced durable batch can outlive a
            // short window). Keep collecting their replies for a bounded grace
            // period — the harness clocks elapsed time after this, so the tail
            // is inside the throughput denominator.
            let deadline = Instant::now() + TAIL_DRAIN_BUDGET;
            while conns.iter().any(|c| !c.in_flight.is_empty()) && Instant::now() < deadline {
                for conn in &mut conns {
                    while !conn.in_flight.is_empty() && conn.drain_one(hist, ops) {}
                }
            }
        },
    )
}

/// Measures the networked KV workload on runtime `R`: boots the store
/// (durable when [`KvParams::durable`] is set), serves it on an ephemeral
/// loopback port, and drives it with the open-loop generator. The returned
/// metrics carry the txobs network-front-end delta of the measured window
/// (and the WAL delta for durable runs).
pub fn measure<R: TxRuntime>(params: &NetKvParams, config: &WorkloadConfig) -> RunMetrics {
    average_metrics(config.repetitions, |rep| match params.kv.durable {
        Some(durability) => measure_durable::<R>(params, config, rep, durability.fsync),
        None => measure_mem::<R>(params, config, rep),
    })
}

fn net_server_config(params: &NetKvParams) -> NetServerConfig {
    NetServerConfig {
        threads: params.server_threads.max(1),
        ..NetServerConfig::default()
    }
}

fn measure_mem<R: TxRuntime>(
    params: &NetKvParams,
    config: &WorkloadConfig,
    rep: u32,
) -> RunMetrics {
    let server = Arc::new(KvServer::<R>::new(&params.kv.server_config()));
    server.populate((0..params.kv.records).map(|k| (k, initial_value(k, params.kv.value_words))));
    let net = NetServer::serve(
        Arc::clone(&server),
        ("127.0.0.1", 0),
        &net_server_config(params),
    )
    .expect("binding the loopback bench server failed");
    let dist = KeyDist::new(&params.kv);
    let net_before = txobs::metrics::net().snapshot();
    let (throughput, latency) = drive_connections(params, net.addr(), config, rep, &dist);
    let net_delta = txobs::metrics::net().snapshot().delta_since(&net_before);
    net.shutdown();
    RunMetrics::new(throughput, latency, server.stats()).with_net(net_delta)
}

fn measure_durable<R: TxRuntime>(
    params: &NetKvParams,
    config: &WorkloadConfig,
    rep: u32,
    fsync: crate::kv::FsyncPolicy,
) -> RunMetrics {
    let dir = TempDir::new("tmbench-net-kv");
    let store = Arc::new(
        DurableKvStore::<R>::boot(
            dir.path(),
            &DurableKvConfig {
                server: params.kv.server_config(),
                fsync,
                crash_points: txkv::CrashPoints::disabled(),
                ..DurableKvConfig::default()
            },
        )
        .expect("failed to boot the durable KV store"),
    );
    store.populate((0..params.kv.records).map(|k| (k, initial_value(k, params.kv.value_words))));
    store.snapshot().expect("baseline snapshot failed");
    let net = NetServer::serve_durable(
        Arc::clone(&store),
        ("127.0.0.1", 0),
        &net_server_config(params),
    )
    .expect("binding the loopback bench server failed");
    let dist = KeyDist::new(&params.kv);
    // Like `kv::measure_durable`: the txobs deltas are process-wide, exact
    // while tmbench's scenario matrix runs sequentially.
    let wal_before = txobs::metrics::wal().snapshot();
    let net_before = txobs::metrics::net().snapshot();
    let (throughput, latency) = drive_connections(params, net.addr(), config, rep, &dist);
    let wal_delta = txobs::metrics::wal().snapshot().delta_since(&wal_before);
    let net_delta = txobs::metrics::net().snapshot().delta_since(&net_before);
    net.shutdown();
    RunMetrics::new(throughput, latency, store.server().stats())
        .with_wal(wal_delta)
        .with_net(net_delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::{FsyncPolicy, KvDurability, KvMix};
    use swisstm::SwisstmRuntime;
    use tlstm::TlstmRuntime;
    use txmem::SeqRefRuntime;

    #[test]
    fn open_loop_generator_makes_progress_on_every_runtime() {
        let config = WorkloadConfig::quick();
        let params = NetKvParams::tiny(KvParams::tiny(KvMix::A));
        let m = measure::<SwisstmRuntime>(&params, &config);
        assert!(m.throughput.ops > 0, "swisstm made no progress");
        let net = m.net.expect("net workloads carry the net delta");
        assert!(net.replies > 0);
        assert!(net.coalesced_batches > 0);
        assert!(net.mean_coalesced_requests() >= 1.0);
        let m = measure::<TlstmRuntime>(&params, &config);
        assert!(m.throughput.ops > 0, "tlstm made no progress");
        let m = measure::<SeqRefRuntime>(&params, &config);
        assert!(m.throughput.ops > 0, "seqref made no progress");
    }

    #[test]
    fn durable_net_path_logs_batches() {
        let config = WorkloadConfig::quick();
        let params = NetKvParams::tiny(KvParams {
            durable: Some(KvDurability {
                fsync: FsyncPolicy::None,
            }),
            ..KvParams::tiny(KvMix::A)
        });
        let m = measure::<SwisstmRuntime>(&params, &config);
        assert!(m.throughput.ops > 0, "durable net path made no progress");
        let wal = m.wal.expect("durable runs carry the WAL delta");
        assert!(wal.enqueued > 0, "writes over the wire must reach the WAL");
        assert!(m.net.expect("net delta").replies > 0);
    }

    #[test]
    fn offered_load_paces_the_generator() {
        // At a deliberately low offered load the generator must stay well
        // under peak: the completed request count tracks the schedule.
        let config = WorkloadConfig {
            duration: Duration::from_millis(200),
            ..WorkloadConfig::quick()
        };
        let rate = 200; // requests/s → ~40 requests in 200 ms
        let params = NetKvParams {
            offered_load: Some(rate),
            ..NetKvParams::tiny(KvParams::tiny(KvMix::C))
        };
        let m = measure::<SeqRefRuntime>(&params, &config);
        let requests = m.throughput.ops / params.kv.ops_per_txn as u64;
        // Generous upper bound: the schedule allows rate × duration requests
        // (plus one window); peak mode on loopback would complete orders of
        // magnitude more.
        let scheduled = rate * 200 / 1000;
        assert!(
            requests <= scheduled + (params.connections * params.max_in_flight) as u64 + 8,
            "paced run completed {requests} requests, schedule allows ~{scheduled}"
        );
        assert!(requests > 0, "paced run made no progress");
    }
}
