//! Raw fast-path overhead microworkloads.
//!
//! These scenarios isolate the per-operation cost of the STM fast path —
//! exactly the overhead the TLSTM paper's speculation model must amortise.
//! A single user-thread runs back-to-back transactions over a **private**
//! word region, so there is no contention, no aborts and no lock waiting:
//! the measured throughput is dominated by the read/write/commit bookkeeping
//! (read-log append, write-set probe, lock acquisition, write-back).
//!
//! Two variants are measured:
//!
//! * **read-only** — `ops_per_txn` random reads, no writes: stresses the
//!   read-log append and the "was this written by me?" negative lookup;
//! * **write-heavy** — `ops_per_txn` random read-modify-writes: stresses
//!   write-set insertion/update, lock acquisition and commit write-back.
//!
//! The region is deliberately larger than one lock entry covers, so the
//! write-heavy variant exercises both the same-lock-different-word path and
//! genuine multi-lock commits.

use std::sync::atomic::Ordering;

use txmem::{
    run_boxed_tasks, Abort, BoxedTaskBody, TxConfig, TxMem, TxRuntime, TxSession, WordAddr,
};

use crate::harness::{average_metrics, run_threads_metrics, DetRng, RunMetrics, WorkloadConfig};

/// Parameters of the overhead microworkload.
#[derive(Debug, Clone)]
pub struct OverheadParams {
    /// Size of each thread's private region, in words.
    pub words: u64,
    /// Transactional operations per transaction.
    pub ops_per_txn: u64,
    /// `true` measures the write-heavy variant, `false` the read-only one.
    pub write_heavy: bool,
    /// Tasks the transaction is split into under TLSTM (1 = plain STM).
    pub tasks_per_txn: usize,
    /// Number of user-threads, each with a disjoint region (uncontended).
    pub threads: usize,
}

impl Default for OverheadParams {
    fn default() -> Self {
        OverheadParams {
            words: 1024,
            ops_per_txn: 64,
            write_heavy: false,
            tasks_per_txn: 1,
            threads: 1,
        }
    }
}

impl OverheadParams {
    /// The read-only variant with `ops_per_txn` reads per transaction.
    pub fn read_only(ops_per_txn: u64) -> Self {
        OverheadParams {
            ops_per_txn,
            ..Default::default()
        }
    }

    /// The write-heavy variant with `ops_per_txn` read-modify-writes per
    /// transaction.
    pub fn write_heavy(ops_per_txn: u64) -> Self {
        OverheadParams {
            ops_per_txn,
            write_heavy: true,
            ..Default::default()
        }
    }

    fn substrate_config(&self) -> TxConfig {
        TxConfig {
            spec_depth: self.tasks_per_txn.max(1),
            ..TxConfig::default()
        }
    }
}

/// Runs the operations `lo..hi` of the transaction whose deterministic base
/// seed is `txn_seed`, against the private region at `region`.
///
/// The address stream is recomputed from the seed on every (re-)execution, so
/// aborted attempts replay the identical operation sequence and the driver
/// never materialises a per-transaction key buffer (the measurement stays a
/// pure fast-path measurement).
fn run_ops<M: TxMem + ?Sized>(
    mem: &mut M,
    region: WordAddr,
    params: &OverheadParams,
    txn_seed: u64,
    lo: u64,
    hi: u64,
) -> Result<(), Abort> {
    let mut rng = DetRng::new(txn_seed);
    for i in 0..hi {
        let addr = region.offset(rng.below(params.words));
        if i < lo {
            continue; // skip this task's predecessors in the op stream
        }
        if params.write_heavy {
            let v = mem.read(addr)?;
            mem.write(addr, v.wrapping_add(1))?;
        } else {
            let _ = mem.read(addr)?;
        }
    }
    Ok(())
}

/// Allocates one private region per thread.
fn regions(heap: &txmem::TxHeap, params: &OverheadParams) -> Vec<WordAddr> {
    (0..params.threads.max(1))
        .map(|_| {
            heap.alloc(params.words)
                .expect("overhead region allocation failed")
        })
        .collect()
}

/// Measures the microworkload on any [`TxRuntime`].
///
/// On a speculative runtime each transaction is split into
/// `tasks_per_txn` tasks covering disjoint ranges of the same deterministic
/// op stream; sequential runtimes always run the whole stream as one body
/// (and the single-body path goes through [`TxSession::run`], which keeps
/// the steady state allocation-free).
pub fn measure<R: TxRuntime>(params: &OverheadParams, config: &WorkloadConfig) -> RunMetrics {
    average_metrics(config.repetitions, |rep| {
        let runtime = R::new(params.substrate_config());
        let regions = regions(runtime.heap(), params);
        let (throughput, latency) = run_threads_metrics(
            params.threads.max(1),
            config.duration,
            |thread_index, stop, ops, hist| {
                let tasks = if R::SPECULATIVE {
                    params.tasks_per_txn.max(1)
                } else {
                    1
                };
                let mut session = runtime.session();
                let region = regions[thread_index];
                let mut seeds =
                    DetRng::new(config.seed ^ (thread_index as u64 + 1) ^ (u64::from(rep) << 32));
                let chunk = params.ops_per_txn.div_ceil(tasks as u64).max(1);
                while !stop.load(Ordering::Relaxed) {
                    let txn_seed = seeds.next_u64();
                    let t0 = std::time::Instant::now();
                    if tasks <= 1 {
                        session.run(|mem| {
                            run_ops(mem, region, params, txn_seed, 0, params.ops_per_txn)
                        });
                    } else {
                        let mut bodies: Vec<BoxedTaskBody<'_>> = (0..tasks as u64)
                            .map(|t| {
                                let lo = (t * chunk).min(params.ops_per_txn);
                                let hi = ((t + 1) * chunk).min(params.ops_per_txn);
                                Box::new(move |mem: &mut dyn TxMem| {
                                    run_ops(mem, region, params, txn_seed, lo, hi)
                                }) as BoxedTaskBody<'_>
                            })
                            .collect();
                        run_boxed_tasks(&mut session, &mut bodies);
                    }
                    hist.record(t0.elapsed());
                    ops.fetch_add(params.ops_per_txn, Ordering::Relaxed);
                }
            },
        );
        RunMetrics::new(throughput, latency, runtime.stats())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swisstm::SwisstmRuntime;
    use txmem::SeqRefRuntime;

    fn tiny(write_heavy: bool) -> OverheadParams {
        OverheadParams {
            words: 64,
            ops_per_txn: 8,
            write_heavy,
            tasks_per_txn: 2,
            threads: 1,
        }
    }

    #[test]
    fn read_only_variant_makes_progress_without_writes() {
        let config = WorkloadConfig::quick();
        let params = tiny(false);
        let m = measure::<SwisstmRuntime>(&params, &config);
        assert!(m.throughput.ops > 0);
        assert_eq!(m.stats.writes, 0, "read-only variant must not write");
        assert!(m.stats.reads > 0);
        let m = measure::<tlstm::TlstmRuntime>(&params, &config);
        assert!(m.throughput.ops > 0);
        assert_eq!(m.stats.writes, 0);
    }

    #[test]
    fn write_heavy_variant_commits_writes() {
        let config = WorkloadConfig::quick();
        let params = tiny(true);
        let m = measure::<SwisstmRuntime>(&params, &config);
        assert!(m.throughput.ops > 0);
        assert!(m.stats.writes > 0, "write-heavy variant must write");
        let m = measure::<tlstm::TlstmRuntime>(&params, &config);
        assert!(m.throughput.ops > 0);
        assert!(m.stats.writes > 0);
    }

    #[test]
    fn seqref_runs_the_same_workload_sequentially() {
        let config = WorkloadConfig::quick();
        let m = measure::<SeqRefRuntime>(&tiny(true), &config);
        assert!(m.throughput.ops > 0);
        assert_eq!(m.stats.tx_aborts, 0, "seqref can never abort");
    }

    #[test]
    fn uncontended_single_thread_runs_never_abort() {
        let config = WorkloadConfig::quick();
        let m = measure::<SwisstmRuntime>(&tiny(true), &config);
        assert_eq!(m.stats.tx_aborts, 0, "single-thread run must be abort-free");
    }

    #[test]
    fn task_split_replays_the_same_op_stream() {
        // The same (seed, txn) pair must touch the same addresses regardless
        // of how the op range is split across tasks: committed state of a
        // write-heavy run is a pure function of the op stream.
        let params = tiny(true);
        let rt = SwisstmRuntime::new(params.substrate_config());
        let region = rt.heap().alloc(params.words).unwrap();
        let mut thread = rt.register_thread();
        thread.atomic(|tx| run_ops(tx, region, &params, 42, 0, params.ops_per_txn));
        let whole: Vec<u64> = (0..params.words)
            .map(|i| rt.heap().load_committed(region.offset(i)))
            .collect();

        let rt2 = SwisstmRuntime::new(params.substrate_config());
        let region2 = rt2.heap().alloc(params.words).unwrap();
        let mut thread2 = rt2.register_thread();
        let mid = params.ops_per_txn / 2;
        thread2.atomic(|tx| {
            run_ops(tx, region2, &params, 42, 0, mid)?;
            run_ops(tx, region2, &params, 42, mid, params.ops_per_txn)
        });
        let split: Vec<u64> = (0..params.words)
            .map(|i| rt2.heap().load_committed(region2.offset(i)))
            .collect();
        assert_eq!(whole, split);
    }
}
