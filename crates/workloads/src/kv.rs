//! The YCSB-style key-value serving workload over `txkv`.
//!
//! Unlike the paper's closed micro/macro-benchmarks, this drives the
//! serving-shaped subsystem: per-client [`txkv::KvSession`]s submit
//! multi-operation batches against a sharded [`txkv::KvStore`]. The workload
//! mixes follow the YCSB core workloads:
//!
//! * **A** — update-heavy: 50% reads / 50% puts;
//! * **B** — read-mostly: 95% reads / 5% puts;
//! * **C** — read-only: 100% reads;
//! * **scan-heavy** — 95% short ordered scans / 5% puts (YCSB E shape, with
//!   updates instead of unbounded inserts so the resident set stays fixed).
//!
//! Keys are drawn either uniformly or from a scrambled [`Zipfian`]
//! distribution (the YCSB default, θ = 0.99) over the populated key space,
//! seeded from the run's [`WorkloadConfig::seed`] so every run — and every
//! re-executed TLSTM task — replays the same stream. Values are
//! fixed-size multi-word records ([`KvParams::value_words`]), which the store
//! overwrites in place, so steady-state batches are allocation-free inside
//! the transactional heap.
//!
//! One *operation* in the reported throughput is one `KvOp` (a whole scan
//! counts as one operation, like YCSB).

use std::sync::atomic::Ordering;

use tlstm_testutil::TempDir;
use txkv::{DurableKvConfig, DurableKvStore, KvOp, KvServer, KvServerConfig, KvStoreParams};
use txmem::{TxConfig, TxRuntime};

use crate::harness::{average_metrics, run_threads_metrics, DetRng, RunMetrics, WorkloadConfig};

pub use txkv::FsyncPolicy;

/// The YCSB-style operation mixes the driver can generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvMix {
    /// Update-heavy: 50% read / 50% update.
    A,
    /// Read-mostly: 95% read / 5% update.
    B,
    /// Read-only.
    C,
    /// Scan-heavy: 95% scan / 5% update.
    ScanHeavy,
}

impl KvMix {
    /// `(read_pct, update_pct, scan_pct)` of the mix (sums to 100).
    pub fn percentages(self) -> (u64, u64, u64) {
        match self {
            KvMix::A => (50, 50, 0),
            KvMix::B => (95, 5, 0),
            KvMix::C => (100, 0, 0),
            KvMix::ScanHeavy => (0, 5, 95),
        }
    }

    /// The identifier used in scenario names (`a`, `b`, `c`, `scan`).
    pub fn label(self) -> &'static str {
        match self {
            KvMix::A => "a",
            KvMix::B => "b",
            KvMix::C => "c",
            KvMix::ScanHeavy => "scan",
        }
    }
}

/// Parameters of the KV serving workload.
#[derive(Debug, Clone)]
pub struct KvParams {
    /// Number of records populated before measurement (the key space).
    pub records: u64,
    /// Value size in 64-bit words.
    pub value_words: u64,
    /// Operations per client batch (= per transaction).
    pub ops_per_txn: usize,
    /// The operation mix.
    pub mix: KvMix,
    /// `true` draws keys from a scrambled zipfian distribution (θ = 0.99),
    /// `false` uniformly.
    pub zipfian: bool,
    /// Maximum entries returned by one scan.
    pub scan_limit: u64,
    /// Hash shards of the store.
    pub shards: u64,
    /// Tasks a batch is split into under TLSTM (also the shard-group count
    /// of the batch plan on both runtimes).
    pub tasks_per_txn: usize,
    /// Number of client threads (sessions).
    pub threads: usize,
    /// `Some` runs the workload through a [`DurableKvStore`] (write-ahead
    /// logged batches with the given fsync policy) in a scratch directory;
    /// `None` runs the plain in-memory server. Comparing the two isolates
    /// the durability overhead.
    pub durable: Option<KvDurability>,
}

/// Durability parameters of a KV workload run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvDurability {
    /// When the WAL acknowledges writes (see [`FsyncPolicy`]).
    pub fsync: FsyncPolicy,
}

impl Default for KvParams {
    fn default() -> Self {
        KvParams {
            records: 16 * 1024,
            value_words: 8,
            ops_per_txn: 16,
            mix: KvMix::A,
            zipfian: true,
            scan_limit: 32,
            shards: 16,
            tasks_per_txn: 1,
            threads: 1,
            durable: None,
        }
    }
}

impl KvParams {
    /// The standard parameterisation of one mix.
    pub fn mix(mix: KvMix) -> Self {
        KvParams {
            mix,
            ..Default::default()
        }
    }

    /// Tiny configuration for unit tests.
    pub fn tiny(mix: KvMix) -> Self {
        KvParams {
            records: 128,
            value_words: 4,
            ops_per_txn: 8,
            mix,
            zipfian: true,
            scan_limit: 8,
            shards: 4,
            tasks_per_txn: 2,
            threads: 1,
            durable: None,
        }
    }

    pub(crate) fn server_config(&self) -> KvServerConfig {
        KvServerConfig {
            store: KvStoreParams {
                shards: self.shards,
                expected_keys: self.records,
            },
            batch_tasks: self.tasks_per_txn.max(1),
            tx: TxConfig::default(),
        }
    }
}

/// The YCSB zipfian generator (Gray et al.'s algorithm, as used by YCSB's
/// `ZipfianGenerator`), with the customary θ = 0.99 and the rank→key
/// scrambling that spreads the hottest ranks across the whole key space.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    /// The YCSB default skew.
    pub const DEFAULT_THETA: f64 = 0.99;

    /// Creates a generator over `0..n` with skew `theta` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `theta` is outside `(0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "zipfian needs a non-empty key space");
        assert!((0.0..1.0).contains(&theta) && theta > 0.0, "theta in (0,1)");
        let zetan = Self::zeta(n, theta);
        let zeta2theta = Self::zeta(2, theta);
        Zipfian {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan),
            zeta2theta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// Draws the next *rank* in `0..n` (rank 0 is the hottest).
    pub fn next_rank(&self, rng: &mut DetRng) -> u64 {
        // 53 random bits → uniform in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    /// Draws the next *key*: the rank scrambled across `0..n` so hot keys
    /// are scattered over all shards (YCSB's `ScrambledZipfianGenerator`).
    /// The multiplier must stay odd: an even effective multiplier would map
    /// every rank to an even key under a power-of-two key space, silently
    /// halving the working set and the shard coverage.
    pub fn next_key(&self, rng: &mut DetRng) -> u64 {
        let rank = self.next_rank(rng);
        rank.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.n
    }

    /// `zeta(2, theta)` (exposed for tests).
    pub fn zeta2theta(&self) -> f64 {
        self.zeta2theta
    }
}

/// Key chooser: zipfian or uniform over the populated records.
#[derive(Debug, Clone)]
pub enum KeyDist {
    /// Uniform over `0..n`.
    Uniform {
        /// Size of the key space.
        n: u64,
    },
    /// Scrambled zipfian (boxed: the generator carries several f64 params).
    Zipfian(Box<Zipfian>),
}

impl KeyDist {
    /// Builds the key chooser for `params`.
    pub fn new(params: &KvParams) -> Self {
        if params.zipfian {
            KeyDist::Zipfian(Box::new(Zipfian::new(
                params.records,
                Zipfian::DEFAULT_THETA,
            )))
        } else {
            KeyDist::Uniform { n: params.records }
        }
    }

    /// Draws the next key.
    pub fn next(&self, rng: &mut DetRng) -> u64 {
        match self {
            KeyDist::Uniform { n } => rng.below(*n),
            KeyDist::Zipfian(z) => z.next_key(rng),
        }
    }
}

/// The initial value of `key` at population time (deterministic, so checks
/// can recompute it).
pub fn initial_value(key: u64, value_words: u64) -> Vec<u64> {
    (0..value_words)
        .map(|i| key.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i))
        .collect()
}

/// Generates the operations of one client batch.
pub fn generate_batch(rng: &mut DetRng, dist: &KeyDist, params: &KvParams) -> Vec<KvOp> {
    let (read_pct, update_pct, _scan_pct) = params.mix.percentages();
    (0..params.ops_per_txn)
        .map(|_| {
            let roll = rng.below(100);
            let key = dist.next(rng);
            if roll < read_pct {
                KvOp::Get { key }
            } else if roll < read_pct + update_pct {
                let value = (0..params.value_words).map(|_| rng.next_u64()).collect();
                KvOp::Put { key, value }
            } else {
                KvOp::Scan {
                    lo: key,
                    hi: key.saturating_add(params.scan_limit * 4),
                    limit: params.scan_limit,
                }
            }
        })
        .collect()
}

fn populate<R: TxRuntime>(server: &KvServer<R>, params: &KvParams) {
    server.populate((0..params.records).map(|k| (k, initial_value(k, params.value_words))));
}

fn measure_server<R: TxRuntime>(
    server: KvServer<R>,
    params: &KvParams,
    config: &WorkloadConfig,
    rep: u32,
) -> RunMetrics {
    populate(&server, params);
    let dist = KeyDist::new(params);
    let (throughput, latency) = run_threads_metrics(
        params.threads.max(1),
        config.duration,
        |client, stop, ops, hist| {
            let mut session = server.session();
            let dist = dist.clone();
            let mut rng = DetRng::new(config.seed ^ (client as u64 + 1) ^ (u64::from(rep) << 32));
            while !stop.load(Ordering::Relaxed) {
                let batch = generate_batch(&mut rng, &dist, params);
                let n = batch.len() as u64;
                let t0 = std::time::Instant::now();
                session.batch(batch);
                hist.record(t0.elapsed());
                ops.fetch_add(n, Ordering::Relaxed);
            }
        },
    );
    RunMetrics::new(throughput, latency, server.stats())
}

/// Measures the workload through a [`DurableKvStore`] in a scratch log
/// directory: the populated base is snapshotted (so the run starts from a
/// realistic durable state), then every client batch is write-ahead logged
/// and waits for its durability acknowledgement. The scratch directory is
/// removed when the run ends.
fn measure_durable<R: TxRuntime>(
    params: &KvParams,
    config: &WorkloadConfig,
    rep: u32,
    fsync: FsyncPolicy,
) -> RunMetrics {
    let dir = TempDir::new("tmbench-kv-durable");
    let store = DurableKvStore::<R>::boot(
        dir.path(),
        &DurableKvConfig {
            server: params.server_config(),
            fsync,
            crash_points: txkv::CrashPoints::disabled(),
            ..DurableKvConfig::default()
        },
    )
    .expect("failed to boot the durable KV store");
    store.populate((0..params.records).map(|k| (k, initial_value(k, params.value_words))));
    store.snapshot().expect("baseline snapshot failed");
    let dist = KeyDist::new(params);
    // Attribute only the measured phase's WAL activity (not population or
    // the baseline snapshot) to this run. The WAL metrics are process-wide,
    // so the delta is exact only while no other durable store is active —
    // which holds for tmbench's sequential scenario matrix.
    let wal_before = txobs::metrics::wal().snapshot();
    let (throughput, latency) = run_threads_metrics(
        params.threads.max(1),
        config.duration,
        |client, stop, ops, hist| {
            let mut session = store.session();
            let dist = dist.clone();
            let mut rng = DetRng::new(config.seed ^ (client as u64 + 1) ^ (u64::from(rep) << 32));
            while !stop.load(Ordering::Relaxed) {
                let batch = generate_batch(&mut rng, &dist, params);
                let n = batch.len() as u64;
                let t0 = std::time::Instant::now();
                session
                    .batch(batch)
                    .expect("WAL writer died during the benchmark");
                hist.record(t0.elapsed());
                ops.fetch_add(n, Ordering::Relaxed);
            }
        },
    );
    let wal_delta = txobs::metrics::wal().snapshot().delta_since(&wal_before);
    RunMetrics::new(throughput, latency, store.server().stats()).with_wal(wal_delta)
}

/// Measures the KV workload on any [`TxRuntime`] (durably, through the
/// write-ahead log, when [`KvParams::durable`] is set). On a speculative
/// runtime each batch executes as `params.tasks_per_txn` shard-group tasks;
/// sequential runtimes execute the identical batch plan in order.
pub fn measure<R: TxRuntime>(params: &KvParams, config: &WorkloadConfig) -> RunMetrics {
    average_metrics(config.repetitions, |rep| match params.durable {
        Some(durability) => measure_durable::<R>(params, config, rep, durability.fsync),
        None => measure_server(
            KvServer::<R>::new(&params.server_config()),
            params,
            config,
            rep,
        ),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use swisstm::SwisstmRuntime;
    use tlstm::TlstmRuntime;
    use txmem::SeqRefRuntime;

    #[test]
    fn mix_percentages_sum_to_100() {
        for mix in [KvMix::A, KvMix::B, KvMix::C, KvMix::ScanHeavy] {
            let (r, u, s) = mix.percentages();
            assert_eq!(r + u + s, 100, "{mix:?}");
        }
    }

    #[test]
    fn zipfian_is_skewed_deterministic_and_in_range() {
        let z = Zipfian::new(1000, Zipfian::DEFAULT_THETA);
        let mut a = DetRng::new(9);
        let mut b = DetRng::new(9);
        let mut hot = 0u64;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            let ra = z.next_rank(&mut a);
            assert_eq!(ra, z.next_rank(&mut b), "determinism");
            assert!(ra < 1000);
            if ra < 10 {
                hot += 1;
            }
            *counts.entry(ra).or_insert(0u64) += 1;
        }
        // With θ=0.99 over 1000 keys, the 10 hottest ranks draw far more
        // than their uniform 1% share (analytically ~34%).
        assert!(
            hot > 4_000,
            "top-10 ranks drew only {hot}/20000 — not zipfian"
        );
        // Rank 0 is the hottest.
        let max_rank = counts.iter().max_by_key(|(_, &c)| c).map(|(&r, _)| r);
        assert_eq!(max_rank, Some(0));
    }

    #[test]
    fn scrambled_keys_stay_in_range_and_spread() {
        let n = 500;
        let z = Zipfian::new(n, Zipfian::DEFAULT_THETA);
        let mut rng = DetRng::new(3);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..5_000 {
            let k = z.next_key(&mut rng);
            assert!(k < n);
            distinct.insert(k);
        }
        assert!(distinct.len() > 50, "scrambling collapsed the key space");
        // With a power-of-two key space (the bench default shape) the
        // scramble must still reach both parities and every shard — an even
        // effective multiplier would silently halve coverage.
        let n = 4096;
        let z = Zipfian::new(n, Zipfian::DEFAULT_THETA);
        let mut parity = [false; 2];
        let mut shards = std::collections::HashSet::new();
        for _ in 0..20_000 {
            let k = z.next_key(&mut rng);
            parity[(k % 2) as usize] = true;
            shards.insert(txkv::shard_of(k, 16));
        }
        assert!(parity[0] && parity[1], "scramble lost a parity class");
        assert_eq!(shards.len(), 16, "scramble does not reach every shard");
    }

    #[test]
    fn uniform_mode_covers_the_key_space() {
        let params = KvParams {
            zipfian: false,
            ..KvParams::tiny(KvMix::C)
        };
        let dist = KeyDist::new(&params);
        let mut rng = DetRng::new(5);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..2_000 {
            distinct.insert(dist.next(&mut rng));
        }
        assert!(distinct.len() as u64 > params.records / 2);
    }

    #[test]
    fn generated_batches_follow_the_mix() {
        let params = KvParams::tiny(KvMix::ScanHeavy);
        let dist = KeyDist::new(&params);
        let mut rng = DetRng::new(11);
        let (mut gets, mut puts, mut scans) = (0, 0, 0);
        for _ in 0..200 {
            for op in generate_batch(&mut rng, &dist, &params) {
                match op {
                    KvOp::Get { .. } => gets += 1,
                    KvOp::Put { .. } => puts += 1,
                    KvOp::Scan { .. } => scans += 1,
                    other => panic!("mix generated {other:?}"),
                }
            }
        }
        assert!(scans > puts * 10, "scan-heavy must be dominated by scans");
        assert!(puts > 0, "scan-heavy keeps a 5% update stream");
        assert_eq!(gets, 0, "scan-heavy has no point reads");
        let params = KvParams::tiny(KvMix::A);
        let dist = KeyDist::new(&params);
        let (mut gets, mut puts) = (0u64, 0u64);
        for _ in 0..200 {
            for op in generate_batch(&mut rng, &dist, &params) {
                match op {
                    KvOp::Get { .. } => gets += 1,
                    KvOp::Put { .. } => puts += 1,
                    other => panic!("mix A generated {other:?}"),
                }
            }
        }
        // 50/50 within generous tolerance.
        let total = gets + puts;
        assert!(
            gets > total / 3 && puts > total / 3,
            "A mix skewed: {gets}/{puts}"
        );
    }

    #[test]
    fn both_runtimes_make_progress_on_every_mix() {
        let config = WorkloadConfig::quick();
        for mix in [KvMix::A, KvMix::B, KvMix::C, KvMix::ScanHeavy] {
            let params = KvParams::tiny(mix);
            let m = measure::<SwisstmRuntime>(&params, &config);
            assert!(m.throughput.ops > 0, "swisstm {mix:?} made no progress");
            assert!(m.stats.tx_commits > 0);
            let m = measure::<TlstmRuntime>(&params, &config);
            assert!(m.throughput.ops > 0, "tlstm {mix:?} made no progress");
            assert!(
                m.stats.task_commits >= m.stats.tx_commits,
                "tlstm must run tasks"
            );
            let m = measure::<SeqRefRuntime>(&params, &config);
            assert!(m.throughput.ops > 0, "seqref {mix:?} made no progress");
        }
    }

    #[test]
    fn durable_mode_makes_progress_on_both_runtimes() {
        let config = WorkloadConfig::quick();
        for fsync in [FsyncPolicy::None, FsyncPolicy::Always] {
            let params = KvParams {
                durable: Some(KvDurability { fsync }),
                ..KvParams::tiny(KvMix::A)
            };
            let m = measure::<SwisstmRuntime>(&params, &config);
            assert!(m.throughput.ops > 0, "swisstm durable {fsync:?}");
            assert!(m.stats.tx_commits > 0);
            let m = measure::<TlstmRuntime>(&params, &config);
            assert!(m.throughput.ops > 0, "tlstm durable {fsync:?}");
            assert!(m.stats.task_commits >= m.stats.tx_commits);
            let m = measure::<SeqRefRuntime>(&params, &config);
            assert!(m.throughput.ops > 0, "seqref durable {fsync:?}");
        }
    }

    #[test]
    fn read_only_mix_never_writes() {
        let config = WorkloadConfig::quick();
        let params = KvParams::tiny(KvMix::C);
        let m = measure::<SwisstmRuntime>(&params, &config);
        assert_eq!(m.stats.writes, 0, "mix C is read-only");
        assert!(m.stats.reads > 0);
    }

    #[test]
    fn seed_makes_runs_reproducible() {
        // Same seed → same committed store contents after a fixed number of
        // batches (the reproducibility the tmbench --seed flag promises).
        let params = KvParams::tiny(KvMix::A);
        let dump = |seed: u64| {
            let server = KvServer::swisstm(&params.server_config());
            populate(&server, &params);
            let dist = KeyDist::new(&params);
            let mut session = server.session();
            let mut rng = DetRng::new(seed);
            for _ in 0..30 {
                session.batch(generate_batch(&mut rng, &dist, &params));
            }
            server.store().dump(&mut server.direct()).unwrap()
        };
        assert_eq!(dump(99), dump(99));
        assert_ne!(dump(99), dump(100), "different seeds must diverge");
    }
}
