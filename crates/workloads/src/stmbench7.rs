//! A reduced, structurally faithful STMBench7 object graph and its
//! "long traversal" operations (Figures 2a and 2b).
//!
//! STMBench7 models a CAD-like module: a tree of *complex assemblies* with a
//! fan-out of three, whose leaves are *base assemblies*; each base assembly
//! references a few *composite parts* drawn from a shared pool, and each
//! composite part owns a graph of *atomic parts*. Because composite parts are
//! **shared between base assemblies of different subtrees**, write traversals
//! of different subtrees touch overlapping state — which is exactly what makes
//! the paper's write-dominated long traversals conflict heavily when TLSTM
//! splits them into per-subtree tasks.
//!
//! The only operation class the paper evaluates is the *long traversal*: a
//! full depth-first walk of the assembly tree that visits every atomic part,
//! either read-only (summing a field) or updating every atomic part's
//! `date` field. TLSTM splits a traversal into 3 tasks (one per root subtree)
//! or 9 tasks (one per depth-2 subtree).

use std::sync::atomic::Ordering;

use swisstm::SwisstmRuntime;
use tlstm::TlstmRuntime;
use txmem::{
    run_boxed_tasks, Abort, BoxedTaskBody, TxConfig, TxMem, TxRuntime, TxSession, WordAddr,
};

use crate::harness::{
    average_metrics, chunk_ranges, run_threads_metrics, DetRng, RunMetrics, Throughput,
    WorkloadConfig,
};

// Complex assembly node: [kind=0, child0, child1, child2]
// Base assembly node:    [kind=1, n_composites, comp_0, ...]
// Composite part:        [n_atomics, atomic_0, ...]
// Atomic part:           [id, x, y, date, build_date]
const KIND_COMPLEX: u64 = 0;
const KIND_BASE: u64 = 1;

const ATOMIC_WORDS: u64 = 5;
const ATOMIC_ID: u64 = 0;
const ATOMIC_X: u64 = 1;
const ATOMIC_Y: u64 = 2;
const ATOMIC_DATE: u64 = 3;
const ATOMIC_BUILD_DATE: u64 = 4;

/// Parameters of the STMBench7-style object graph.
#[derive(Debug, Clone)]
pub struct Stmbench7Params {
    /// Levels of complex assemblies (the root is level 1); base assemblies
    /// hang off the lowest complex-assembly level.
    pub assembly_levels: u32,
    /// Children per complex assembly (STMBench7 uses 3; the paper's task
    /// split relies on it).
    pub assembly_fanout: u64,
    /// Composite parts referenced by each base assembly.
    pub composites_per_base: u64,
    /// Size of the shared composite-part pool.
    pub composite_pool: u64,
    /// Atomic parts per composite part.
    pub atomics_per_composite: u64,
    /// Fraction of traversals that are read-only, in percent.
    pub read_pct: u64,
    /// Tasks a traversal is split into under TLSTM (1, 3 or 9).
    pub tasks_per_txn: usize,
    /// Number of user-threads.
    pub threads: usize,
}

impl Default for Stmbench7Params {
    fn default() -> Self {
        Stmbench7Params {
            assembly_levels: 4,
            assembly_fanout: 3,
            composites_per_base: 3,
            composite_pool: 60,
            atomics_per_composite: 20,
            read_pct: 90,
            tasks_per_txn: 3,
            threads: 1,
        }
    }
}

impl Stmbench7Params {
    /// Tiny graph for unit tests.
    pub fn tiny() -> Self {
        Stmbench7Params {
            assembly_levels: 3,
            assembly_fanout: 3,
            composites_per_base: 2,
            composite_pool: 6,
            atomics_per_composite: 4,
            read_pct: 50,
            tasks_per_txn: 3,
            threads: 1,
        }
    }

    fn substrate_config(&self) -> TxConfig {
        TxConfig {
            spec_depth: self.tasks_per_txn.max(1),
            ..TxConfig::default()
        }
    }

    /// Number of base assemblies in the graph.
    pub fn base_assemblies(&self) -> u64 {
        self.assembly_fanout.pow(self.assembly_levels - 1)
    }
}

/// The built object graph.
#[derive(Debug, Clone, Copy)]
pub struct Stmbench7 {
    /// The root complex assembly.
    pub root: WordAddr,
}

impl Stmbench7 {
    /// Builds and populates the object graph.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure.
    pub fn populate<M: TxMem + ?Sized>(
        mem: &mut M,
        params: &Stmbench7Params,
    ) -> Result<Self, Abort> {
        let mut rng = DetRng::new(0x57B7);
        // Shared pool of composite parts.
        let mut pool = Vec::with_capacity(params.composite_pool as usize);
        let mut next_atomic_id = 0u64;
        for _ in 0..params.composite_pool {
            let comp = mem.alloc(1 + params.atomics_per_composite)?;
            mem.write(comp, params.atomics_per_composite)?;
            for a in 0..params.atomics_per_composite {
                let atomic = mem.alloc(ATOMIC_WORDS)?;
                mem.write(atomic.offset(ATOMIC_ID), next_atomic_id)?;
                mem.write(atomic.offset(ATOMIC_X), rng.below(1000))?;
                mem.write(atomic.offset(ATOMIC_Y), rng.below(1000))?;
                mem.write(atomic.offset(ATOMIC_DATE), 0)?;
                mem.write(atomic.offset(ATOMIC_BUILD_DATE), rng.below(10_000))?;
                mem.write(comp.offset(1 + a), atomic.index())?;
                next_atomic_id += 1;
            }
            pool.push(comp);
        }
        let root = Self::build_assembly(mem, params, &mut rng, &pool, 1)?;
        Ok(Stmbench7 { root })
    }

    fn build_assembly<M: TxMem + ?Sized>(
        mem: &mut M,
        params: &Stmbench7Params,
        rng: &mut DetRng,
        pool: &[WordAddr],
        level: u32,
    ) -> Result<WordAddr, Abort> {
        if level == params.assembly_levels {
            // Base assembly referencing composite parts from the shared pool.
            let node = mem.alloc(2 + params.composites_per_base)?;
            mem.write(node, KIND_BASE)?;
            mem.write(node.offset(1), params.composites_per_base)?;
            for c in 0..params.composites_per_base {
                let comp = pool[rng.below(pool.len() as u64) as usize];
                mem.write(node.offset(2 + c), comp.index())?;
            }
            Ok(node)
        } else {
            let node = mem.alloc(1 + params.assembly_fanout)?;
            mem.write(node, KIND_COMPLEX)?;
            for c in 0..params.assembly_fanout {
                let child = Self::build_assembly(mem, params, rng, pool, level + 1)?;
                mem.write(node.offset(1 + c), child.index())?;
            }
            Ok(node)
        }
    }

    /// The addresses of the root's direct children (the 3-way task split) or
    /// grandchildren (the 9-way split).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn subtree_roots<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        params: &Stmbench7Params,
        depth: u32,
    ) -> Result<Vec<WordAddr>, Abort> {
        let mut frontier = vec![self.root];
        for _ in 0..depth {
            let mut next = Vec::new();
            for node in frontier {
                let kind = mem.read(node)?;
                if kind == KIND_BASE {
                    next.push(node);
                    continue;
                }
                for c in 0..params.assembly_fanout {
                    next.push(WordAddr::new(mem.read(node.offset(1 + c))?));
                }
            }
            frontier = next;
        }
        Ok(frontier)
    }
}

/// Traverses the subtree rooted at `node`, visiting every atomic part.
///
/// In read-only mode the x fields are summed; in write mode every atomic
/// part's `date` field is bumped (the T2-style update of STMBench7) and the
/// sum is still returned.
///
/// # Errors
///
/// Propagates transactional aborts.
pub fn traverse<M: TxMem + ?Sized>(
    mem: &mut M,
    params: &Stmbench7Params,
    node: WordAddr,
    write: bool,
) -> Result<u64, Abort> {
    let kind = mem.read(node)?;
    let mut sum = 0u64;
    if kind == KIND_COMPLEX {
        for c in 0..params.assembly_fanout {
            let child = WordAddr::new(mem.read(node.offset(1 + c))?);
            sum = sum.wrapping_add(traverse(mem, params, child, write)?);
        }
        return Ok(sum);
    }
    // Base assembly: visit every atomic part of every referenced composite.
    let n_comp = mem.read(node.offset(1))?;
    for c in 0..n_comp {
        let comp = WordAddr::new(mem.read(node.offset(2 + c))?);
        let n_atomics = mem.read(comp)?;
        for a in 0..n_atomics {
            let atomic = WordAddr::new(mem.read(comp.offset(1 + a))?);
            sum = sum.wrapping_add(mem.read(atomic.offset(ATOMIC_X))?);
            if write {
                let date = mem.read(atomic.offset(ATOMIC_DATE))?;
                mem.write(atomic.offset(ATOMIC_DATE), date + 1)?;
            } else {
                sum = sum.wrapping_add(mem.read(atomic.offset(ATOMIC_BUILD_DATE))?);
            }
        }
    }
    Ok(sum)
}

/// The task count a runtime actually uses for this parameter set.
fn tasks_for<R: TxRuntime>(params: &Stmbench7Params) -> usize {
    if R::SPECULATIVE {
        params.tasks_per_txn.max(1)
    } else {
        1
    }
}

/// Runs one long traversal on an open session: whole-tree as a single body
/// on a sequential runtime, or one task per subtree chunk on a speculative
/// one (3 tasks → one root subtree each, 9 → one depth-2 subtree each).
fn run_traversal<S: TxSession>(
    session: &mut S,
    params: &Stmbench7Params,
    root: WordAddr,
    subtrees: &[WordAddr],
    tasks: usize,
    write: bool,
) {
    if tasks <= 1 {
        session.run(|mem| traverse(mem, params, root, write).map(|_| ()));
    } else {
        let mut bodies: Vec<BoxedTaskBody<'_>> = chunk_ranges(subtrees.len(), tasks)
            .into_iter()
            .map(|(lo, hi)| {
                Box::new(move |mem: &mut dyn TxMem| {
                    for &subtree in &subtrees[lo..hi] {
                        traverse(mem, params, subtree, write)?;
                    }
                    Ok(())
                }) as BoxedTaskBody<'_>
            })
            .collect();
        run_boxed_tasks(session, &mut bodies);
    }
}

/// Measures the long-traversal workload on any [`TxRuntime`], with
/// per-transaction latencies and the runtime's statistics breakdown. On a
/// speculative runtime each traversal is split into `params.tasks_per_txn`
/// per-subtree tasks.
pub fn measure<R: TxRuntime>(params: &Stmbench7Params, config: &WorkloadConfig) -> RunMetrics {
    let split_depth = if params.tasks_per_txn > 3 { 2 } else { 1 };
    average_metrics(config.repetitions, |rep| {
        let runtime = R::new(params.substrate_config());
        let bench =
            Stmbench7::populate(&mut runtime.direct(), params).expect("populate cannot abort");
        let subtrees = bench
            .subtree_roots(&mut runtime.direct(), params, split_depth)
            .expect("subtree discovery cannot abort");
        let (throughput, latency) = run_threads_metrics(
            params.threads,
            config.duration,
            |thread_index, stop, ops, hist| {
                let tasks = tasks_for::<R>(params);
                let mut session = runtime.session();
                let mut rng =
                    DetRng::new(config.seed ^ (thread_index as u64 + 1) ^ (u64::from(rep) << 32));
                while !stop.load(Ordering::Relaxed) {
                    let write = !rng.percent(params.read_pct);
                    let t0 = std::time::Instant::now();
                    run_traversal(&mut session, params, bench.root, &subtrees, tasks, write);
                    hist.record(t0.elapsed());
                    ops.fetch_add(1, Ordering::Relaxed);
                }
            },
        );
        RunMetrics::new(throughput, latency, runtime.stats())
    })
}

/// Measures the long-traversal workload on any [`TxRuntime`], returning just
/// the throughput.
pub fn run<R: TxRuntime>(params: &Stmbench7Params, config: &WorkloadConfig) -> Throughput {
    measure::<R>(params, config).throughput
}

/// Conformance helper: applies `n` write traversals of the freshly populated
/// graph and returns every atomic part's final `date`, keyed (and ordered)
/// by atomic id. Sequential semantics make the result a pure function of
/// `(params, n)` — identical on every runtime and task split.
pub fn write_traversal_dates<R: TxRuntime>(params: &Stmbench7Params, n: u64) -> Vec<u64> {
    let split_depth = if params.tasks_per_txn > 3 { 2 } else { 1 };
    let runtime = R::new(params.substrate_config());
    let bench = Stmbench7::populate(&mut runtime.direct(), params).expect("populate cannot abort");
    let subtrees = bench
        .subtree_roots(&mut runtime.direct(), params, split_depth)
        .expect("subtree discovery cannot abort");
    let tasks = tasks_for::<R>(params);
    let mut session = runtime.session();
    for _ in 0..n {
        run_traversal(&mut session, params, bench.root, &subtrees, tasks, true);
    }
    drop(session);
    let mut dates = std::collections::BTreeMap::new();
    collect_dates_rec(&mut runtime.direct(), params, bench.root, &mut dates);
    dates.into_values().collect()
}

fn collect_dates_rec<M: TxMem + ?Sized>(
    mem: &mut M,
    params: &Stmbench7Params,
    node: WordAddr,
    out: &mut std::collections::BTreeMap<u64, u64>,
) {
    let kind = mem.read(node).expect("direct reads cannot abort");
    if kind == KIND_COMPLEX {
        for c in 0..params.assembly_fanout {
            let child = WordAddr::new(mem.read(node.offset(1 + c)).unwrap());
            collect_dates_rec(mem, params, child, out);
        }
        return;
    }
    let n_comp = mem.read(node.offset(1)).unwrap();
    for c in 0..n_comp {
        let comp = WordAddr::new(mem.read(node.offset(2 + c)).unwrap());
        let n_atomics = mem.read(comp).unwrap();
        for a in 0..n_atomics {
            let atomic = WordAddr::new(mem.read(comp.offset(1 + a)).unwrap());
            let id = mem.read(atomic.offset(ATOMIC_ID)).unwrap();
            let date = mem.read(atomic.offset(ATOMIC_DATE)).unwrap();
            out.insert(id, date);
        }
    }
}

/// One Figure 2a data point: throughput at a given read-only percentage.
#[derive(Debug, Clone, Copy)]
pub struct Fig2aPoint {
    /// Percentage of read-only traversals.
    pub read_pct: u64,
    /// SwissTM with 1 thread.
    pub swisstm_1: f64,
    /// SwissTM with 3 threads.
    pub swisstm_3: f64,
    /// TLSTM with 1 thread and 3 tasks.
    pub tlstm_1_3: f64,
}

/// Regenerates Figure 2a: one user-thread with 3 tasks vs SwissTM with 1 and
/// 3 threads, across read-only percentages.
pub fn fig2a_series(
    base: &Stmbench7Params,
    read_pcts: &[u64],
    config: &WorkloadConfig,
) -> Vec<Fig2aPoint> {
    read_pcts
        .iter()
        .map(|&read_pct| {
            let mut params = base.clone();
            params.read_pct = read_pct;
            params.threads = 1;
            params.tasks_per_txn = 1;
            let swisstm_1 = run::<SwisstmRuntime>(&params, config).ops_per_sec();
            params.threads = 3;
            let swisstm_3 = run::<SwisstmRuntime>(&params, config).ops_per_sec();
            params.threads = 1;
            params.tasks_per_txn = 3;
            let tlstm_1_3 = run::<TlstmRuntime>(&params, config).ops_per_sec();
            Fig2aPoint {
                read_pct,
                swisstm_1,
                swisstm_3,
                tlstm_1_3,
            }
        })
        .collect()
}

/// One Figure 2b data point: throughput of the three systems at a given
/// thread count and workload mix.
#[derive(Debug, Clone, Copy)]
pub struct Fig2bPoint {
    /// Percentage of read-only traversals (10 = write-dominated,
    /// 60 = read-write, 90 = read-dominated).
    pub read_pct: u64,
    /// Number of user-threads.
    pub threads: usize,
    /// SwissTM throughput (traversals/s).
    pub swisstm: f64,
    /// TLSTM, 3 tasks per thread.
    pub tlstm_3: f64,
    /// TLSTM, 9 tasks per thread.
    pub tlstm_9: f64,
}

/// Regenerates Figure 2b: SwissTM vs TLSTM with 3 and 9 tasks per thread, for
/// 1..=3 user-threads and the three standard STMBench7 mixes.
pub fn fig2b_series(
    base: &Stmbench7Params,
    read_pcts: &[u64],
    thread_counts: &[usize],
    config: &WorkloadConfig,
) -> Vec<Fig2bPoint> {
    let mut out = Vec::new();
    for &read_pct in read_pcts {
        for &threads in thread_counts {
            let mut params = base.clone();
            params.read_pct = read_pct;
            params.threads = threads;
            params.tasks_per_txn = 1;
            let swisstm = run::<SwisstmRuntime>(&params, config).ops_per_sec();
            params.tasks_per_txn = 3;
            let tlstm_3 = run::<TlstmRuntime>(&params, config).ops_per_sec();
            params.tasks_per_txn = 9;
            let tlstm_9 = run::<TlstmRuntime>(&params, config).ops_per_sec();
            out.push(Fig2bPoint {
                read_pct,
                threads,
                swisstm,
                tlstm_3,
                tlstm_9,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmem::DirectMem;

    #[test]
    fn graph_has_expected_shape() {
        let params = Stmbench7Params::tiny();
        let substrate = txmem::TxSubstrate::new(params.substrate_config());
        let mut mem = DirectMem::new(&substrate.heap);
        let bench = Stmbench7::populate(&mut mem, &params).unwrap();
        assert_eq!(params.base_assemblies(), 9);
        let level1 = bench.subtree_roots(&mut mem, &params, 1).unwrap();
        assert_eq!(level1.len(), 3);
        let level2 = bench.subtree_roots(&mut mem, &params, 2).unwrap();
        assert_eq!(level2.len(), 9);
    }

    #[test]
    fn read_traversal_visits_every_atomic_part_at_least_once() {
        let params = Stmbench7Params::tiny();
        let substrate = txmem::TxSubstrate::new(params.substrate_config());
        let mut mem = DirectMem::new(&substrate.heap);
        let bench = Stmbench7::populate(&mut mem, &params).unwrap();
        let sum = traverse(&mut mem, &params, bench.root, false).unwrap();
        assert!(sum > 0, "a full traversal should accumulate field values");
    }

    #[test]
    fn write_traversal_bumps_dates() {
        let params = Stmbench7Params::tiny();
        let substrate = txmem::TxSubstrate::new(params.substrate_config());
        let mut mem = DirectMem::new(&substrate.heap);
        let bench = Stmbench7::populate(&mut mem, &params).unwrap();
        let before = traverse(&mut mem, &params, bench.root, false).unwrap();
        traverse(&mut mem, &params, bench.root, true).unwrap();
        let after = traverse(&mut mem, &params, bench.root, false).unwrap();
        // The read-only sum does not include dates, so it must be unchanged...
        assert_eq!(before, after);
        // ...but the composite pool's dates moved: verify through one subtree.
        // (A second write traversal bumps them again without error.)
        traverse(&mut mem, &params, bench.root, true).unwrap();
    }

    #[test]
    fn subtree_split_covers_the_whole_graph() {
        // The sum over per-subtree traversals must equal the full traversal
        // (composite parts shared across subtrees are counted per reference).
        let params = Stmbench7Params::tiny();
        let substrate = txmem::TxSubstrate::new(params.substrate_config());
        let mut mem = DirectMem::new(&substrate.heap);
        let bench = Stmbench7::populate(&mut mem, &params).unwrap();
        let full = traverse(&mut mem, &params, bench.root, false).unwrap();
        let subtrees = bench.subtree_roots(&mut mem, &params, 1).unwrap();
        let mut partial = 0u64;
        for s in subtrees {
            partial = partial.wrapping_add(traverse(&mut mem, &params, s, false).unwrap());
        }
        assert_eq!(full, partial);
    }

    #[test]
    fn every_runtime_completes_traversals() {
        let mut params = Stmbench7Params::tiny();
        params.threads = 1;
        let config = WorkloadConfig::quick();
        assert!(run::<SwisstmRuntime>(&params, &config).ops > 0);
        assert!(run::<txmem::SeqRefRuntime>(&params, &config).ops > 0);
        params.tasks_per_txn = 3;
        assert!(run::<TlstmRuntime>(&params, &config).ops > 0);
    }

    #[test]
    fn write_traversals_preserve_date_consistency_across_runtimes() {
        // After N write traversals every atomic part's date must equal N
        // times its reference count, regardless of the runtime and task
        // split (sequential semantics).
        let mut params = Stmbench7Params::tiny();
        params.read_pct = 0;
        let n = 5u64;

        let sw_dates = write_traversal_dates::<SwisstmRuntime>(&params, n);
        let tl_dates = write_traversal_dates::<TlstmRuntime>(&params, n);
        let sq_dates = write_traversal_dates::<txmem::SeqRefRuntime>(&params, n);
        assert_eq!(sw_dates, tl_dates, "swisstm and tlstm diverged");
        assert_eq!(sw_dates, sq_dates, "swisstm and seqref diverged");
        // Shared composite parts are visited once per referencing base
        // assembly, so dates are multiples of the traversal count.
        for d in &sw_dates {
            assert!(*d >= n, "every atomic part must have been updated");
            assert_eq!(*d % n, 0, "date must be a multiple of the traversal count");
        }
    }
}
