//! A re-implementation of the STAMP *Vacation* travel-reservation OLTP
//! application, modified as in the TLSTM paper (Figure 1b).
//!
//! The system manages four relations (cars, flights, rooms, customers). The
//! paper modifies the original benchmark so that each client issues **eight
//! operations per transaction** (an "application-server transaction"), which
//! TLSTM then splits into **two tasks of four operations** each. Both the
//! low-contention and the high-contention parameterisations of the original
//! benchmark are retained.
//!
//! Every operation is generated ahead of the transaction (deterministically),
//! so re-executed tasks replay exactly the same logical operation and the
//! SwissTM and TLSTM runs execute identical operation streams.

use std::sync::atomic::Ordering;

use swisstm::SwisstmRuntime;
use tlstm::TlstmRuntime;
use txcollections::{TxRbTree, TxSortedList};
use txmem::{
    run_boxed_tasks, Abort, BoxedTaskBody, TxConfig, TxMem, TxRuntime, TxSession, WordAddr,
};

use crate::harness::{
    average_metrics, chunk_ranges, run_threads_metrics, DetRng, RunMetrics, Throughput,
    WorkloadConfig,
};

/// The three reservable resource kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResKind {
    /// Rental cars.
    Car,
    /// Flight seats.
    Flight,
    /// Hotel rooms.
    Room,
}

impl ResKind {
    /// All kinds, in a fixed order.
    pub const ALL: [ResKind; 3] = [ResKind::Car, ResKind::Flight, ResKind::Room];

    fn index(self) -> u64 {
        match self {
            ResKind::Car => 0,
            ResKind::Flight => 1,
            ResKind::Room => 2,
        }
    }
}

/// Reservation-table record layout: `total, used, free, price`.
const REC_WORDS: u64 = 4;
const REC_TOTAL: u64 = 0;
const REC_USED: u64 = 1;
const REC_FREE: u64 = 2;
const REC_PRICE: u64 = 3;

/// Benchmark parameters (the `-n -q -u -r` knobs of STAMP Vacation).
#[derive(Debug, Clone)]
pub struct VacationParams {
    /// Rows in each reservation relation (`-r`).
    pub relations: u64,
    /// Number of customers.
    pub customers: u64,
    /// Items queried by each operation (`-n`).
    pub queries_per_op: u64,
    /// Percentage of the relation that queries may touch (`-q`); lower values
    /// concentrate the accesses and raise contention.
    pub query_range_pct: u64,
    /// Percentage of operations that are client reservations (`-u`); the rest
    /// are administrative (delete customer / update tables).
    pub user_op_pct: u64,
    /// Operations per client transaction (the paper uses 8).
    pub ops_per_txn: usize,
    /// Tasks the transaction is split into under TLSTM (the paper uses 2).
    pub tasks_per_txn: usize,
    /// Number of clients (user-threads).
    pub clients: usize,
}

impl VacationParams {
    /// The paper's low-contention configuration (STAMP `-n2 -q90 -u98`).
    pub fn low_contention() -> Self {
        VacationParams {
            relations: 4096,
            customers: 4096,
            queries_per_op: 2,
            query_range_pct: 90,
            user_op_pct: 98,
            ops_per_txn: 8,
            tasks_per_txn: 2,
            clients: 1,
        }
    }

    /// The paper's high-contention configuration (STAMP `-n4 -q60 -u90`).
    pub fn high_contention() -> Self {
        VacationParams {
            relations: 4096,
            customers: 4096,
            queries_per_op: 4,
            query_range_pct: 60,
            user_op_pct: 90,
            ops_per_txn: 8,
            tasks_per_txn: 2,
            clients: 1,
        }
    }

    /// Tiny configuration for unit tests.
    pub fn tiny() -> Self {
        VacationParams {
            relations: 64,
            customers: 64,
            queries_per_op: 2,
            query_range_pct: 90,
            user_op_pct: 90,
            ops_per_txn: 4,
            tasks_per_txn: 2,
            clients: 1,
        }
    }

    fn substrate_config(&self) -> TxConfig {
        TxConfig {
            spec_depth: self.tasks_per_txn.max(1),
            ..TxConfig::default()
        }
    }

    fn query_range(&self) -> u64 {
        ((self.relations * self.query_range_pct) / 100).max(1)
    }
}

/// Handles to the shared reservation system state.
#[derive(Debug, Clone, Copy)]
pub struct Manager {
    tables: [TxRbTree; 3],
    /// customer id → header of the customer's reservation list.
    customers: TxRbTree,
}

impl Manager {
    /// Builds and populates the reservation system.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure.
    pub fn populate<M: TxMem + ?Sized>(
        mem: &mut M,
        params: &VacationParams,
    ) -> Result<Self, Abort> {
        let tables = [
            TxRbTree::create(mem)?,
            TxRbTree::create(mem)?,
            TxRbTree::create(mem)?,
        ];
        let customers = TxRbTree::create(mem)?;
        let mut rng = DetRng::new(0xFACADE);
        for kind in ResKind::ALL {
            for id in 0..params.relations {
                let record = mem.alloc(REC_WORDS)?;
                let capacity = 100 + rng.below(100);
                mem.write(record.offset(REC_TOTAL), capacity)?;
                mem.write(record.offset(REC_USED), 0)?;
                mem.write(record.offset(REC_FREE), capacity)?;
                mem.write(record.offset(REC_PRICE), 50 + rng.below(450))?;
                tables[kind.index() as usize].insert(mem, id, record.index())?;
            }
        }
        for cid in 0..params.customers {
            let list = TxSortedList::create(mem)?;
            customers.insert(mem, cid, list.header().index())?;
        }
        Ok(Manager { tables, customers })
    }

    fn table(&self, kind: ResKind) -> TxRbTree {
        self.tables[kind.index() as usize]
    }

    fn record<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        kind: ResKind,
        id: u64,
    ) -> Result<Option<WordAddr>, Abort> {
        Ok(self.table(kind).get(mem, id)?.map(WordAddr::new))
    }

    /// Total free units of `kind`/`id` (test helper).
    pub fn free_units<M: TxMem + ?Sized>(
        &self,
        mem: &mut M,
        kind: ResKind,
        id: u64,
    ) -> Result<Option<u64>, Abort> {
        match self.record(mem, kind, id)? {
            None => Ok(None),
            Some(rec) => Ok(Some(mem.read(rec.offset(REC_FREE))?)),
        }
    }

    /// Sums `used` over every record of every table (test invariant helper:
    /// must equal the total number of reservations held by customers).
    pub fn total_used<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<u64, Abort> {
        let mut sum = 0;
        for kind in ResKind::ALL {
            for (_, rec) in self.table(kind).to_vec(mem)? {
                sum += mem.read(WordAddr::new(rec).offset(REC_USED))?;
            }
        }
        Ok(sum)
    }

    /// Counts reservations across all customer lists (test invariant helper).
    pub fn total_reservations<M: TxMem + ?Sized>(&self, mem: &mut M) -> Result<u64, Abort> {
        let mut sum = 0;
        for (_, list_header) in self.customers.to_vec(mem)? {
            let list = TxSortedList::from_header(WordAddr::new(list_header));
            sum += list.len(mem)?;
        }
        Ok(sum)
    }
}

/// One pre-generated client/administrative operation.
#[derive(Debug, Clone)]
pub enum VacationOp {
    /// Query `queries` items and reserve the highest-priced available one for
    /// `customer`.
    MakeReservation {
        /// The reserving customer.
        customer: u64,
        /// `(kind, id)` pairs to query.
        queries: Vec<(ResKind, u64)>,
    },
    /// Remove a customer and release all of their reservations.
    DeleteCustomer {
        /// The customer to remove.
        customer: u64,
    },
    /// Administrative price/capacity updates.
    UpdateTables {
        /// `(kind, id, new_price)` updates; a price of 0 retires the item's
        /// free capacity instead.
        updates: Vec<(ResKind, u64, u64)>,
    },
}

/// Generates one operation.
fn generate_op(rng: &mut DetRng, params: &VacationParams) -> VacationOp {
    let range = params.query_range();
    if rng.percent(params.user_op_pct) {
        let customer = rng.below(params.customers);
        let queries = (0..params.queries_per_op)
            .map(|_| {
                let kind = ResKind::ALL[rng.below(3) as usize];
                (kind, rng.below(range))
            })
            .collect();
        VacationOp::MakeReservation { customer, queries }
    } else if rng.percent(50) {
        VacationOp::DeleteCustomer {
            customer: rng.below(params.customers),
        }
    } else {
        let updates = (0..params.queries_per_op)
            .map(|_| {
                let kind = ResKind::ALL[rng.below(3) as usize];
                (kind, rng.below(range), 50 + rng.below(450))
            })
            .collect();
        VacationOp::UpdateTables { updates }
    }
}

/// Generates the operations of one client transaction.
pub fn generate_txn(rng: &mut DetRng, params: &VacationParams) -> Vec<VacationOp> {
    (0..params.ops_per_txn)
        .map(|_| generate_op(rng, params))
        .collect()
}

/// Executes one operation against the shared state. Written once over
/// [`TxMem`], so SwissTM transactions and TLSTM tasks run identical code.
pub fn execute_op<M: TxMem + ?Sized>(
    mem: &mut M,
    manager: &Manager,
    op: &VacationOp,
) -> Result<(), Abort> {
    match op {
        VacationOp::MakeReservation { customer, queries } => {
            // Find the highest-priced item with free capacity among the
            // queried ones (the STAMP semantics).
            let mut best: Option<(ResKind, u64, WordAddr, u64)> = None;
            for &(kind, id) in queries {
                if let Some(rec) = manager.record(mem, kind, id)? {
                    let free = mem.read(rec.offset(REC_FREE))?;
                    let price = mem.read(rec.offset(REC_PRICE))?;
                    if free > 0 && best.as_ref().is_none_or(|b| price > b.3) {
                        best = Some((kind, id, rec, price));
                    }
                }
            }
            if let Some((kind, id, rec, price)) = best {
                let free = mem.read(rec.offset(REC_FREE))?;
                if free > 0 {
                    if let Some(list_header) = manager.customers.get(mem, *customer)? {
                        let list = TxSortedList::from_header(WordAddr::new(list_header));
                        let reservation_key = kind.index() << 32 | id;
                        // The customer list is keyed by item, so re-booking an
                        // already-held item only refreshes the stored price.
                        // Capacity must move in lockstep with list membership,
                        // otherwise `used` drifts ahead of the reservations
                        // that `DeleteCustomer` can ever release.
                        if list.insert(mem, reservation_key, price)? {
                            mem.write(rec.offset(REC_FREE), free - 1)?;
                            let used = mem.read(rec.offset(REC_USED))?;
                            mem.write(rec.offset(REC_USED), used + 1)?;
                        }
                    }
                }
            }
            Ok(())
        }
        VacationOp::DeleteCustomer { customer } => {
            if let Some(list_header) = manager.customers.get(mem, *customer)? {
                let list = TxSortedList::from_header(WordAddr::new(list_header));
                // Release every reservation the customer holds.
                for (reservation_key, _price) in list.to_vec(mem)? {
                    let kind = ResKind::ALL[(reservation_key >> 32) as usize];
                    let id = reservation_key & 0xFFFF_FFFF;
                    if let Some(rec) = manager.record(mem, kind, id)? {
                        let free = mem.read(rec.offset(REC_FREE))?;
                        mem.write(rec.offset(REC_FREE), free + 1)?;
                        let used = mem.read(rec.offset(REC_USED))?;
                        mem.write(rec.offset(REC_USED), used.saturating_sub(1))?;
                    }
                    list.remove(mem, reservation_key)?;
                }
            }
            Ok(())
        }
        VacationOp::UpdateTables { updates } => {
            for &(kind, id, new_price) in updates {
                if let Some(rec) = manager.record(mem, kind, id)? {
                    mem.write(rec.offset(REC_PRICE), new_price)?;
                }
            }
            Ok(())
        }
    }
}

/// Executes a slice of a client transaction's operations.
pub fn execute_ops<M: TxMem + ?Sized>(
    mem: &mut M,
    manager: &Manager,
    ops: &[VacationOp],
) -> Result<(), Abort> {
    for op in ops {
        execute_op(mem, manager, op)?;
    }
    Ok(())
}

/// The task count a runtime actually uses for this parameter set.
fn tasks_for<R: TxRuntime>(params: &VacationParams) -> usize {
    if R::SPECULATIVE {
        params.tasks_per_txn.max(1)
    } else {
        1
    }
}

/// Runs one client transaction on an open session: as a single body on a
/// sequential runtime, as `tasks` chunked task bodies on a speculative one.
fn run_txn<S: TxSession>(session: &mut S, manager: &Manager, txn: &[VacationOp], tasks: usize) {
    if tasks <= 1 {
        session.run(|mem| execute_ops(mem, manager, txn));
    } else {
        let mut bodies: Vec<BoxedTaskBody<'_>> = chunk_ranges(txn.len(), tasks)
            .into_iter()
            .map(|(lo, hi)| {
                Box::new(move |mem: &mut dyn TxMem| execute_ops(mem, manager, &txn[lo..hi]))
                    as BoxedTaskBody<'_>
            })
            .collect();
        run_boxed_tasks(session, &mut bodies);
    }
}

/// Measures Vacation on any [`TxRuntime`] with `params.clients` client
/// threads, with per-transaction latencies and the runtime's statistics
/// breakdown. Throughput is reported in client *operations* (not
/// transactions). On a speculative runtime each client transaction is split
/// into `params.tasks_per_txn` tasks (the paper uses 2).
pub fn measure<R: TxRuntime>(params: &VacationParams, config: &WorkloadConfig) -> RunMetrics {
    average_metrics(config.repetitions, |rep| {
        let runtime = R::new(params.substrate_config());
        let manager =
            Manager::populate(&mut runtime.direct(), params).expect("populate cannot abort");
        let (throughput, latency) = run_threads_metrics(
            params.clients,
            config.duration,
            |client, stop, ops, hist| {
                let tasks = tasks_for::<R>(params);
                let mut session = runtime.session();
                let mut rng =
                    DetRng::new(config.seed ^ (client as u64 + 1) ^ (u64::from(rep) << 32));
                while !stop.load(Ordering::Relaxed) {
                    let txn = generate_txn(&mut rng, params);
                    let t0 = std::time::Instant::now();
                    run_txn(&mut session, &manager, &txn, tasks);
                    hist.record(t0.elapsed());
                    ops.fetch_add(txn.len() as u64, Ordering::Relaxed);
                }
            },
        );
        RunMetrics::new(throughput, latency, runtime.stats())
    })
}

/// Measures Vacation on any [`TxRuntime`], returning just the throughput.
pub fn run<R: TxRuntime>(params: &VacationParams, config: &WorkloadConfig) -> Throughput {
    measure::<R>(params, config).throughput
}

/// Conformance helper: applies `txns` transactions of the deterministic
/// stream seeded with `seed` and returns the final total of used units. The
/// result is a pure function of `(params, txns, seed)` and must be identical
/// on every runtime.
pub fn stream_total_used<R: TxRuntime>(params: &VacationParams, txns: u64, seed: u64) -> u64 {
    let runtime = R::new(params.substrate_config());
    let manager = Manager::populate(&mut runtime.direct(), params).expect("populate cannot abort");
    let tasks = tasks_for::<R>(params);
    let mut session = runtime.session();
    let mut rng = DetRng::new(seed);
    for _ in 0..txns {
        let txn = generate_txn(&mut rng, params);
        run_txn(&mut session, &manager, &txn, tasks);
    }
    drop(session);
    manager
        .total_used(&mut runtime.direct())
        .expect("direct reads cannot abort")
}

/// One Figure 1b data point.
#[derive(Debug, Clone, Copy)]
pub struct Fig1bPoint {
    /// Number of clients (user-threads).
    pub clients: usize,
    /// SwissTM throughput (operations per millisecond).
    pub swisstm_ops_per_ms: f64,
    /// TLSTM with one task per transaction.
    pub tlstm1_ops_per_ms: f64,
    /// TLSTM with two tasks per transaction.
    pub tlstm2_ops_per_ms: f64,
}

/// Regenerates one Figure 1b series (one contention level across client
/// counts).
pub fn fig1b_series(
    base: &VacationParams,
    client_counts: &[usize],
    config: &WorkloadConfig,
) -> Vec<Fig1bPoint> {
    client_counts
        .iter()
        .map(|&clients| {
            let mut params = base.clone();
            params.clients = clients;
            params.tasks_per_txn = 1;
            let swisstm = run::<SwisstmRuntime>(&params, config);
            let tlstm1 = run::<TlstmRuntime>(&params, config);
            params.tasks_per_txn = 2;
            let tlstm2 = run::<TlstmRuntime>(&params, config);
            Fig1bPoint {
                clients,
                swisstm_ops_per_ms: swisstm.ops_per_ms(),
                tlstm1_ops_per_ms: tlstm1.ops_per_ms(),
                tlstm2_ops_per_ms: tlstm2.ops_per_ms(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use txmem::DirectMem;

    #[test]
    fn populate_builds_all_tables() {
        let params = VacationParams::tiny();
        let substrate = txmem::TxSubstrate::new(params.substrate_config());
        let mut mem = DirectMem::new(&substrate.heap);
        let manager = Manager::populate(&mut mem, &params).unwrap();
        for kind in ResKind::ALL {
            assert_eq!(manager.table(kind).len(&mut mem).unwrap(), params.relations);
        }
        assert_eq!(manager.customers.len(&mut mem).unwrap(), params.customers);
        assert_eq!(manager.total_used(&mut mem).unwrap(), 0);
    }

    #[test]
    fn make_reservation_updates_capacity_and_customer_list() {
        let params = VacationParams::tiny();
        let substrate = txmem::TxSubstrate::new(params.substrate_config());
        let mut mem = DirectMem::new(&substrate.heap);
        let manager = Manager::populate(&mut mem, &params).unwrap();
        let before = manager
            .free_units(&mut mem, ResKind::Car, 3)
            .unwrap()
            .unwrap();
        let op = VacationOp::MakeReservation {
            customer: 1,
            queries: vec![(ResKind::Car, 3)],
        };
        execute_op(&mut mem, &manager, &op).unwrap();
        let after = manager
            .free_units(&mut mem, ResKind::Car, 3)
            .unwrap()
            .unwrap();
        assert_eq!(after, before - 1);
        assert_eq!(manager.total_used(&mut mem).unwrap(), 1);
        assert_eq!(manager.total_reservations(&mut mem).unwrap(), 1);
    }

    #[test]
    fn delete_customer_releases_reservations() {
        let params = VacationParams::tiny();
        let substrate = txmem::TxSubstrate::new(params.substrate_config());
        let mut mem = DirectMem::new(&substrate.heap);
        let manager = Manager::populate(&mut mem, &params).unwrap();
        for id in 0..3 {
            execute_op(
                &mut mem,
                &manager,
                &VacationOp::MakeReservation {
                    customer: 7,
                    queries: vec![(ResKind::Room, id)],
                },
            )
            .unwrap();
        }
        assert_eq!(manager.total_used(&mut mem).unwrap(), 3);
        execute_op(
            &mut mem,
            &manager,
            &VacationOp::DeleteCustomer { customer: 7 },
        )
        .unwrap();
        assert_eq!(manager.total_used(&mut mem).unwrap(), 0);
        assert_eq!(manager.total_reservations(&mut mem).unwrap(), 0);
    }

    #[test]
    fn update_tables_changes_prices() {
        let params = VacationParams::tiny();
        let substrate = txmem::TxSubstrate::new(params.substrate_config());
        let mut mem = DirectMem::new(&substrate.heap);
        let manager = Manager::populate(&mut mem, &params).unwrap();
        execute_op(
            &mut mem,
            &manager,
            &VacationOp::UpdateTables {
                updates: vec![(ResKind::Flight, 5, 777)],
            },
        )
        .unwrap();
        let rec = manager
            .record(&mut mem, ResKind::Flight, 5)
            .unwrap()
            .unwrap();
        assert_eq!(mem.read(rec.offset(REC_PRICE)).unwrap(), 777);
    }

    #[test]
    fn reservation_workload_commits_on_every_runtime() {
        // used units across tables must always equal reservations held by
        // customers, no matter which runtime executed the operations.
        let mut params = VacationParams::tiny();
        params.clients = 2;
        let config = WorkloadConfig::quick();
        assert!(run::<SwisstmRuntime>(&params, &config).ops > 0);
        assert!(run::<TlstmRuntime>(&params, &config).ops > 0);
        assert!(run::<txmem::SeqRefRuntime>(&params, &config).ops > 0);
    }

    #[test]
    fn all_runtimes_apply_the_same_deterministic_stream_identically() {
        let params = VacationParams::tiny();
        let sw_used = stream_total_used::<SwisstmRuntime>(&params, 25, 123);
        let tl_used = stream_total_used::<TlstmRuntime>(&params, 25, 123);
        let sq_used = stream_total_used::<txmem::SeqRefRuntime>(&params, 25, 123);
        assert_eq!(sw_used, tl_used, "swisstm and tlstm diverged");
        assert_eq!(sw_used, sq_used, "swisstm and seqref diverged");
    }
}
