//! Throughput and latency measurement harness.
//!
//! The paper reports throughput (operations per second / per millisecond) of
//! fixed-duration multi-threaded runs, averaged over repetitions. The harness
//! here does the same: it runs one driver closure per user-thread until a stop
//! flag is raised, counts committed operations, and aggregates.
//!
//! On top of the paper's plain throughput numbers, the harness records
//! per-transaction latencies into per-thread [`LatencyHistogram`]s (each
//! driver thread owns its histogram, so recording is contention-free and
//! attribution is per user-thread) and bundles throughput, latency and the
//! runtime's [`StatsSnapshot`] into a [`RunMetrics`] consumed by the `tmbench`
//! reporter.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use txmem::StatsSnapshot;

/// Default measured duration of one data point.
pub const DEFAULT_DURATION: Duration = Duration::from_millis(300);

/// Common knobs of a benchmark run.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// How long each data point is measured for.
    pub duration: Duration,
    /// Number of repetitions to average (the paper averages three runs).
    pub repetitions: u32,
    /// Seed for the deterministic workload generators.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            duration: DEFAULT_DURATION,
            repetitions: 1,
            seed: 0xC0FFEE,
        }
    }
}

impl WorkloadConfig {
    /// A configuration suitable for unit tests (very short runs).
    pub fn quick() -> Self {
        WorkloadConfig {
            duration: Duration::from_millis(60),
            repetitions: 1,
            seed: 7,
        }
    }
}

/// Result of one throughput measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Committed operations (benchmark-defined unit, e.g. lookups or client
    /// operations).
    pub ops: u64,
    /// Wall-clock duration of the measurement.
    pub elapsed: Duration,
}

impl Throughput {
    /// Operations per second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ops as f64 / self.elapsed.as_secs_f64()
        }
    }

    /// Operations per millisecond (the unit of Figure 1b).
    pub fn ops_per_ms(&self) -> f64 {
        self.ops_per_sec() / 1_000.0
    }
}

impl fmt::Display for Throughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ops in {:.0} ms ({:.0} ops/s)",
            self.ops,
            self.elapsed.as_secs_f64() * 1e3,
            self.ops_per_sec()
        )
    }
}

// The log₂ latency histogram now lives in `txobs` (shared with the metrics
// registry and the WAL writer); re-exported here so workload drivers keep
// their import path.
pub use txobs::LatencyHistogram;

/// Everything one measured workload run produces: throughput, per-transaction
/// latency, and the runtime's statistics counters (commit/abort/conflict
/// breakdown) accumulated over the run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Committed operations over wall-clock time.
    pub throughput: Throughput,
    /// Per-user-transaction latency histogram, merged across threads.
    pub latency: LatencyHistogram,
    /// Runtime statistics accumulated over the run (summed across
    /// repetitions).
    pub stats: StatsSnapshot,
    /// WAL pipeline activity attributable to the run (batch/fsync counters
    /// and latency histograms); `None` for non-durable workloads.
    pub wal: Option<txobs::metrics::WalSnapshot>,
    /// Network front-end activity attributable to the run (request/reply and
    /// coalescing counters); `None` for in-process workloads.
    pub net: Option<txobs::metrics::NetSnapshot>,
}

impl RunMetrics {
    /// Convenience constructor for a single run.
    pub fn new(throughput: Throughput, latency: LatencyHistogram, stats: StatsSnapshot) -> Self {
        RunMetrics {
            throughput,
            latency,
            stats,
            wal: None,
            net: None,
        }
    }

    /// Attaches the WAL pipeline activity observed during the run.
    pub fn with_wal(mut self, wal: txobs::metrics::WalSnapshot) -> Self {
        self.wal = Some(wal);
        self
    }

    /// Attaches the network front-end activity observed during the run.
    pub fn with_net(mut self, net: txobs::metrics::NetSnapshot) -> Self {
        self.net = Some(net);
        self
    }
}

/// Runs `driver` on `n_threads` OS threads for `duration` and returns the
/// aggregated throughput.
///
/// Each driver receives its thread index, a stop flag to poll between
/// operations and a counter to add committed operations to.
pub fn run_threads<F>(n_threads: usize, duration: Duration, driver: F) -> Throughput
where
    F: Fn(usize, &AtomicBool, &AtomicU64) + Send + Sync,
{
    let (throughput, _latency) =
        run_threads_metrics(n_threads, duration, |idx, stop, ops, _hist| {
            driver(idx, stop, ops)
        });
    throughput
}

/// Like [`run_threads`], but each driver thread additionally owns a
/// [`LatencyHistogram`] to record per-transaction latencies into; the
/// per-thread histograms are merged and returned alongside the throughput.
pub fn run_threads_metrics<F>(
    n_threads: usize,
    duration: Duration,
    driver: F,
) -> (Throughput, LatencyHistogram)
where
    F: Fn(usize, &AtomicBool, &AtomicU64, &mut LatencyHistogram) + Send + Sync,
{
    let stop = Arc::new(AtomicBool::new(false));
    let ops = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let mut merged = LatencyHistogram::new();
    std::thread::scope(|scope| {
        let driver = &driver;
        let handles: Vec<_> = (0..n_threads)
            .map(|thread_index| {
                let stop = Arc::clone(&stop);
                let ops = Arc::clone(&ops);
                scope.spawn(move || {
                    let mut histogram = LatencyHistogram::new();
                    driver(thread_index, &stop, &ops, &mut histogram);
                    histogram
                })
            })
            .collect();
        std::thread::sleep(duration);
        stop.store(true, Ordering::Relaxed);
        for handle in handles {
            merged.merge(&handle.join().expect("benchmark driver thread panicked"));
        }
    });
    (
        Throughput {
            ops: ops.load(Ordering::Relaxed),
            elapsed: started.elapsed(),
        },
        merged,
    )
}

/// Averages the throughput of `repetitions` runs produced by `make_run`.
pub fn average_runs(repetitions: u32, mut make_run: impl FnMut(u32) -> Throughput) -> Throughput {
    let repetitions = repetitions.max(1);
    let mut total_ops = 0u64;
    let mut total_time = Duration::ZERO;
    for rep in 0..repetitions {
        let t = make_run(rep);
        total_ops += t.ops;
        total_time += t.elapsed;
    }
    Throughput {
        ops: total_ops / u64::from(repetitions),
        elapsed: total_time / repetitions,
    }
}

/// Averages the throughput of `repetitions` runs produced by `make_run`,
/// merging the latency histograms and summing the statistics counters.
pub fn average_metrics(
    repetitions: u32,
    mut make_run: impl FnMut(u32) -> RunMetrics,
) -> RunMetrics {
    let repetitions = repetitions.max(1);
    let mut total_ops = 0u64;
    let mut total_time = Duration::ZERO;
    let mut latency = LatencyHistogram::new();
    let mut stats = StatsSnapshot::default();
    let mut wal: Option<txobs::metrics::WalSnapshot> = None;
    let mut net: Option<txobs::metrics::NetSnapshot> = None;
    for rep in 0..repetitions {
        let run = make_run(rep);
        total_ops += run.throughput.ops;
        total_time += run.throughput.elapsed;
        latency.merge(&run.latency);
        stats = stats.merged(&run.stats);
        if let Some(run_wal) = run.wal {
            wal.get_or_insert_with(Default::default).merge(&run_wal);
        }
        if let Some(run_net) = run.net {
            net.get_or_insert_with(Default::default).merge(&run_net);
        }
    }
    RunMetrics {
        throughput: Throughput {
            ops: total_ops / u64::from(repetitions),
            elapsed: total_time / repetitions,
        },
        latency,
        stats,
        wal,
        net,
    }
}

/// Splits `len` items into `tasks` contiguous `[lo, hi)` ranges — the task
/// decomposition the workloads use when a speculative runtime splits one
/// transaction into tasks. Ranges are contiguous and cover all items; later
/// ranges are empty when `tasks` exceeds `len`.
pub fn chunk_ranges(len: usize, tasks: usize) -> Vec<(usize, usize)> {
    let tasks = tasks.max(1);
    let chunk = len.div_ceil(tasks).max(1);
    (0..tasks)
        .map(|t| ((t * chunk).min(len), ((t + 1) * chunk).min(len)))
        .collect()
}

/// A small, fast, deterministic PRNG (xorshift*), used by the workload
/// generators so that runs are reproducible and re-executed tasks see the
/// same operation stream.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: u64,
}

impl DetRng {
    /// Creates a generator from a non-zero seed (zero is mapped to a fixed
    /// constant).
    pub fn new(seed: u64) -> Self {
        DetRng {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.next_u64() % bound
    }

    /// Uniform value in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// `true` with probability `percent`/100.
    pub fn percent(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_arithmetic() {
        let t = Throughput {
            ops: 1000,
            elapsed: Duration::from_millis(500),
        };
        assert!((t.ops_per_sec() - 2000.0).abs() < 1.0);
        assert!((t.ops_per_ms() - 2.0).abs() < 0.01);
        assert!(t.to_string().contains("1000 ops"));
        let zero = Throughput {
            ops: 10,
            elapsed: Duration::ZERO,
        };
        assert_eq!(zero.ops_per_sec(), 0.0);
    }

    #[test]
    fn run_threads_counts_all_threads() {
        let t = run_threads(4, Duration::from_millis(50), |_idx, stop, ops| {
            while !stop.load(Ordering::Relaxed) {
                ops.fetch_add(1, Ordering::Relaxed);
                std::thread::yield_now();
            }
        });
        assert!(t.ops > 4, "all threads should contribute");
        assert!(t.elapsed >= Duration::from_millis(50));
    }

    #[test]
    fn average_runs_divides_by_repetitions() {
        let mut calls = 0;
        let avg = average_runs(3, |_| {
            calls += 1;
            Throughput {
                ops: 300,
                elapsed: Duration::from_millis(30),
            }
        });
        assert_eq!(calls, 3);
        assert_eq!(avg.ops, 300);
        assert_eq!(avg.elapsed, Duration::from_millis(30));
    }

    #[test]
    fn run_threads_metrics_collects_per_thread_histograms() {
        let (t, hist) = run_threads_metrics(3, Duration::from_millis(40), |_idx, stop, ops, h| {
            while !stop.load(Ordering::Relaxed) {
                let t0 = Instant::now();
                std::thread::yield_now();
                h.record(t0.elapsed());
                ops.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(t.ops > 0);
        assert_eq!(hist.count(), t.ops, "one latency sample per operation");
        assert!(hist.mean_ns() > 0.0);
    }

    #[test]
    fn average_metrics_merges_reps() {
        let mut calls = 0u32;
        let m = average_metrics(2, |_| {
            calls += 1;
            let mut latency = LatencyHistogram::new();
            latency.record_ns(100);
            let stats = StatsSnapshot {
                tx_commits: 5,
                ..Default::default()
            };
            RunMetrics::new(
                Throughput {
                    ops: 10,
                    elapsed: Duration::from_millis(20),
                },
                latency,
                stats,
            )
        });
        assert_eq!(calls, 2);
        assert_eq!(m.throughput.ops, 10);
        assert_eq!(m.throughput.elapsed, Duration::from_millis(20));
        assert_eq!(m.latency.count(), 2);
        assert_eq!(m.stats.tx_commits, 10);
    }

    #[test]
    fn det_rng_is_deterministic_and_bounded() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = DetRng::new(7);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
            let _ = r.percent(30);
        }
        // Seed zero must not get stuck at zero.
        let mut z = DetRng::new(0);
        assert_ne!(z.next_u64(), 0);
    }
}
