//! # tlstm-workloads — the benchmark applications of the TLSTM paper
//!
//! This crate re-implements the three benchmark applications used in the
//! evaluation section (§4) of *"Unifying Thread-Level Speculation and
//! Transactional Memory"* (Barreto et al., Middleware 2012) on top of the
//! `swisstm` and `tlstm` runtimes, plus the throughput harness that drives
//! them:
//!
//! * [`rbtree_bench`] — the modified red-black-tree micro-benchmark of
//!   Figure 1a: one thread runs transactions of `N` read-only lookups, which
//!   TLSTM splits into 2 or 4 tasks;
//! * [`vacation`] — a re-implementation of the STAMP *Vacation* travel
//!   reservation system, modified as in the paper (Figure 1b): each client
//!   transaction performs 8 operations and is split into 2 tasks;
//! * [`stmbench7`] — a reduced-but-structurally-faithful STMBench7 object
//!   graph whose "long traversals" are split into 3 or 9 tasks
//!   (Figures 2a and 2b);
//! * [`harness`] — duration-based throughput measurement utilities shared by
//!   the figure-regeneration binaries in the `tlstm-bench` crate;
//! * [`kv`] — the YCSB-style serving workload over the `txkv` sharded
//!   transactional key-value store (zipfian/uniform key choice, mixes
//!   A/B/C/scan-heavy, batches split into speculative tasks under TLSTM);
//! * [`overhead`] — single-thread uncontended microworkloads (read-only and
//!   write-heavy) that isolate the raw per-operation fast-path overhead of
//!   each runtime, used to track the zero-allocation hot-path work;
//! * [`net_kv`] — the KV serving workload driven over the wire: a
//!   multi-connection open-loop load generator against a loopback `txnet`
//!   server, measuring the full frame → coalesced-batch → reply pipeline.
//!
//! All workload *operations* are written once against [`txmem::TxMem`], so the
//! exact same operation code runs on SwissTM transactions and on TLSTM tasks —
//! the comparisons measure the runtimes, not different benchmark code.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod harness;
pub mod kv;
pub mod net_kv;
pub mod overhead;
pub mod rbtree_bench;
pub mod stmbench7;
pub mod vacation;

pub use harness::{LatencyHistogram, RunMetrics, Throughput, WorkloadConfig};
