//! Minimal `criterion` API shim.
//!
//! The build environment has no crates.io access, so this in-tree crate
//! provides the subset of the criterion API the workspace's `harness = false`
//! bench targets use: [`Criterion`], benchmark groups, [`Bencher::iter`],
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Measurements are wall-clock medians over `sample_size` samples,
//! printed as plain text; there is no statistical analysis or HTML report.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            id: name.to_string(),
        }
    }
}

/// Timing driver handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher<'a> {
    config: &'a Criterion,
    /// Median nanoseconds per iteration of the last `iter` call.
    result_ns: Option<f64>,
}

impl Bencher<'_> {
    /// Runs `routine` repeatedly and records its median time per iteration.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run for the configured duration to stabilise caches/JIT-y
        // effects, and to estimate how many iterations fit in one sample.
        let warm_up_end = Instant::now() + self.config.warm_up_time;
        let mut warm_iters: u64 = 0;
        let warm_started = Instant::now();
        while Instant::now() < warm_up_end {
            std_black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_started.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let samples = self.config.sample_size.max(2);
        let sample_budget = self.config.measurement_time.as_secs_f64() / samples as f64;
        let iters_per_sample = ((sample_budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        let mut sample_ns: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let started = Instant::now();
            for _ in 0..iters_per_sample {
                std_black_box(routine());
            }
            let elapsed = started.elapsed().as_nanos() as f64;
            sample_ns.push(elapsed / iters_per_sample as f64);
        }
        sample_ns.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        self.result_ns = Some(sample_ns[sample_ns.len() / 2]);
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    fn run_one(&self, id: &str, f: impl FnOnce(&mut Bencher<'_>)) {
        let mut bencher = Bencher {
            config: self.criterion,
            result_ns: None,
        };
        f(&mut bencher);
        match bencher.result_ns {
            Some(ns) => println!("{}/{}: {}", self.name, id, format_ns(ns)),
            None => println!("{}/{}: no measurement taken", self.name, id),
        }
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher<'_>),
    ) -> &mut Self {
        let id = id.into();
        self.run_one(&id.id, f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through to the closure.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher<'_>, &I),
    ) -> &mut Self {
        self.run_one(&id.id, |b| f(b, input));
        self
    }

    /// Ends the group (printing is already done per-benchmark).
    pub fn finish(self) {}
}

/// The benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a single function outside of any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher<'_>)) -> &mut Self {
        let group = BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        };
        group.run_one("", f);
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Declares a group of benchmark functions, optionally with a configured
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates the `main` function for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2))
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = quick();
        let mut group = c.benchmark_group("shim");
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn ids_format_as_expected() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(5.0).contains("ns"));
        assert!(format_ns(5e3).contains("µs"));
        assert!(format_ns(5e6).contains("ms"));
        assert!(format_ns(5e9).contains("s/iter"));
    }
}
