//! Minimal `proptest` API shim.
//!
//! The build environment has no crates.io access, so this in-tree crate
//! provides the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] / [`prop_oneof!`] / `prop_assert*` macros, the
//! [`Strategy`] trait with `prop_map` / `boxed`, integer range strategies,
//! tuple strategies, [`collection::vec`], [`option::of`], [`any`], and
//! [`ProptestConfig`].
//!
//! Test cases are generated from a deterministic seeded RNG (override the
//! base seed with the `PROPTEST_SEED` environment variable to replay a run).
//! On failure the runner greedily shrinks each argument — collection
//! strategies shrink by dropping chunks and single elements, scalar
//! strategies shrink toward their lower bound — and reports the minimal
//! failing input it found.

use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

// --- deterministic RNG ------------------------------------------------------

/// Deterministic RNG (splitmix64) driving test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// The base seed: `PROPTEST_SEED` env var, or a fixed default.
fn base_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0x5EED_CAFE_F00D_D00D)
}

// --- config -----------------------------------------------------------------

/// Runner configuration, selected with `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Maximum number of shrink attempts after a failure.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 1024,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

// --- Strategy ---------------------------------------------------------------

/// A generator (and shrinker) of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Clone + fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes simpler candidates for a failing value, best-first.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f`.
    fn prop_map<W, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        W: Clone + fmt::Debug,
        F: Fn(Self::Value) -> W,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<V> {
    inner: Rc<dyn Strategy<Value = V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<V: Clone + fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.generate(rng)
    }
    fn shrink(&self, value: &V) -> Vec<V> {
        self.inner.shrink(value)
    }
}

impl<V> fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BoxedStrategy").finish_non_exhaustive()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, W, F> Strategy for Map<S, F>
where
    S: Strategy,
    W: Clone + fmt::Debug,
    F: Fn(S::Value) -> W,
{
    type Value = W;
    fn generate(&self, rng: &mut TestRng) -> W {
        (self.f)(self.inner.generate(rng))
    }
    // Mapped values cannot be un-mapped, so element-level shrinking stops
    // here; containers above (vec/option/tuples) still shrink structurally.
}

/// Strategy that always yields a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between several strategies of the same value type
/// (the engine behind [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V: Clone + fmt::Debug> Union<V> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V: Clone + fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

impl<V> fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Union")
            .field("arms", &self.arms.len())
            .finish()
    }
}

// --- integer strategies -----------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                let lo = self.start;
                let v = *value;
                if v > lo {
                    out.push(lo);
                    let mid = lo + (v - lo) / 2;
                    if mid != lo && mid != v {
                        out.push(mid);
                    }
                    if v - 1 != lo {
                        out.push(v - 1);
                    }
                }
                out
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

// --- Arbitrary / any --------------------------------------------------------

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Clone + fmt::Debug {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
    /// Proposes simpler candidates for a failing value.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
            fn shrink(&self) -> Vec<$t> {
                let v = *self;
                let mut out = Vec::new();
                if v != 0 {
                    out.push(0);
                    if v / 2 != 0 {
                        out.push(v / 2);
                    }
                    if v - 1 != 0 && v - 1 != v / 2 {
                        out.push(v - 1);
                    }
                }
                out
            }
        }
    )+};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
    fn shrink(&self) -> Vec<bool> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        value.shrink()
    }
}

/// The canonical strategy for `T` (`any::<u64>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

// --- tuple strategies -------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident/$idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

// --- collection strategies --------------------------------------------------

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::*;

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Minimum length (inclusive).
        pub min: usize,
        /// Maximum length (inclusive).
        pub max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange { min: len, max: len }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from a [`SizeRange`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            let len = value.len();
            let min = self.size.min;
            // Structural shrinks first: halves, then single-element removals.
            if len > min {
                let half = (len / 2).max(min);
                if half < len {
                    out.push(value[..half].to_vec());
                    out.push(value[len - half..].to_vec());
                }
                let removable = len.min(24);
                for i in 0..removable {
                    let mut shorter = Vec::with_capacity(len - 1);
                    shorter.extend_from_slice(&value[..i]);
                    shorter.extend_from_slice(&value[i + 1..]);
                    out.push(shorter);
                }
            }
            // Element-level shrinks on a bounded prefix.
            for (i, elem) in value.iter().enumerate().take(16) {
                for candidate in self.element.shrink(elem) {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

pub mod option {
    //! Option strategies (`prop::option::of`).

    use super::*;

    /// Strategy for `Option<S::Value>`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `None` about a quarter of the time, `Some` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }

        fn shrink(&self, value: &Option<S::Value>) -> Vec<Option<S::Value>> {
            match value {
                None => Vec::new(),
                Some(v) => {
                    let mut out = vec![None];
                    out.extend(self.inner.shrink(v).into_iter().map(Some));
                    out
                }
            }
        }
    }
}

// --- runner -----------------------------------------------------------------

/// A tuple of per-argument strategies, as assembled by the [`proptest!`]
/// macro. Implemented for tuples of up to five strategies.
pub trait ArgStrategies {
    /// The tuple of generated argument values.
    type Values: Clone + fmt::Debug;

    /// Generates one value per argument.
    fn generate(&self, rng: &mut TestRng) -> Self::Values;

    /// Tries per-argument shrink candidates (holding the other arguments
    /// fixed) and returns the first candidate `still_fails` accepts.
    fn shrink_step(
        &self,
        values: &Self::Values,
        still_fails: &mut dyn FnMut(&Self::Values) -> bool,
    ) -> Option<Self::Values>;
}

macro_rules! arg_strategies {
    ($(($($s:ident/$idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> ArgStrategies for ($($s,)+) {
            type Values = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Values {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink_step(
                &self,
                values: &Self::Values,
                still_fails: &mut dyn FnMut(&Self::Values) -> bool,
            ) -> Option<Self::Values> {
                $(
                    for candidate in self.$idx.shrink(&values.$idx) {
                        let mut next = values.clone();
                        next.$idx = candidate;
                        if still_fails(&next) {
                            return Some(next);
                        }
                    }
                )+
                None
            }
        }
    )+};
}

arg_strategies! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
}

/// Drives one `proptest!`-declared test: generates `config.cases` inputs,
/// and on failure shrinks greedily before panicking with the minimal input.
pub fn run_proptest<A: ArgStrategies>(
    config: &ProptestConfig,
    name: &str,
    strategies: A,
    test: impl Fn(A::Values),
) {
    let seed = base_seed();
    for case in 0..config.cases {
        let mut rng = TestRng::from_seed(
            seed.wrapping_add(u64::from(case).wrapping_mul(0xA24B_AED4_963E_E407)),
        );
        let values = strategies.generate(&mut rng);
        let failed = catch_unwind(AssertUnwindSafe(|| test(values.clone()))).is_err();
        if !failed {
            continue;
        }
        // Shrink: keep taking the first simpler input that still fails.
        let mut current = values;
        let mut attempts = 0u32;
        let budget = config.max_shrink_iters;
        loop {
            let mut still_fails = |candidate: &A::Values| {
                attempts += 1;
                attempts <= budget
                    && catch_unwind(AssertUnwindSafe(|| test(candidate.clone()))).is_err()
            };
            match strategies.shrink_step(&current, &mut still_fails) {
                Some(simpler) if attempts <= budget => current = simpler,
                _ => break,
            }
        }
        // Re-run the minimal input so its panic message is the one reported.
        let result = catch_unwind(AssertUnwindSafe(|| test(current.clone())));
        panic!(
            "proptest `{name}` failed (case {case}/{}, seed {seed}).\n\
             Minimal failing input: {current:?}\n\
             Failure: {}",
            config.cases,
            match &result {
                Err(e) => e
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| e.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic payload>")
                    .to_string(),
                Ok(()) => "input no longer fails after shrinking (flaky test?)".to_string(),
            }
        );
    }
}

// --- macros -----------------------------------------------------------------

/// Declares property tests; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategies = ($($strat,)+);
            $crate::run_proptest(&config, stringify!($name), strategies, |($($arg,)+)| {
                $body
            });
        }
    )*};
}

/// Uniform choice between strategies; mirrors `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!($($fmt)*);
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: both sides equal `{:?}`",
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::{collection, ArgStrategies, Strategy, TestRng};

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (5..10u64).generate(&mut rng);
            assert!((5..10).contains(&v));
            let w = (0..3usize).generate(&mut rng);
            assert!(w < 3);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = collection::vec((0..100u64, any::<u64>()), 1..20);
        let a: Vec<_> = {
            let mut rng = TestRng::from_seed(9);
            (0..10).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = TestRng::from_seed(9);
            (0..10).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn vec_strategy_respects_size_and_shrinks_shorter() {
        let strat = collection::vec(0..50u64, 3..10);
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((3..10).contains(&v.len()));
            for cand in strat.shrink(&v) {
                assert!(cand.len() >= 3);
                assert!(cand.len() <= v.len());
            }
        }
    }

    #[test]
    fn oneof_draws_from_every_arm() {
        let strat = prop_oneof![Just(1u64), Just(2u64), Just(3u64)];
        let mut rng = TestRng::from_seed(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn shrink_step_finds_failing_candidate() {
        // A "test" that fails whenever the value is >= 10: shrinking from 40
        // must walk down but never below 10.
        let strategies = (0..100u64,);
        let failing = (40u64,);
        let mut still_fails = |v: &(u64,)| v.0 >= 10;
        let step = strategies.shrink_step(&failing, &mut still_fails);
        assert!(step.is_some());
        assert!(step.unwrap().0 < 40);
    }

    #[test]
    fn option_of_generates_both_variants() {
        let strat = crate::option::of(0..5u64);
        let mut rng = TestRng::from_seed(4);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                Some(_) => some += 1,
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(xs in prop::collection::vec(0..100u64, 0..20), flag in any::<bool>()) {
            let _ = flag;
            let sum: u64 = xs.iter().sum();
            prop_assert!(sum <= 100 * 20);
            prop_assert!(xs.iter().all(|&x| x < 100));
            prop_assert_ne!(sum + 1, sum);
        }
    }
}
