//! Minimal `rand` API shim.
//!
//! The build environment has no crates.io access, so this in-tree crate
//! provides the subset of the rand API the workspace uses:
//! `rngs::StdRng`, [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] over half-open integer ranges. The generator is a
//! deterministic splitmix64 — statistically far weaker than the real
//! `StdRng`, but fully adequate for reproducible tests.

use std::ops::Range;

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Uniform sample from `[lo, hi)` given a raw 64-bit value source.
    fn sample(range: Range<Self>, next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample(range: Range<Self>, next: &mut dyn FnMut() -> u64) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let offset = (u128::from(next()) % span) as i128;
                (range.start as i128 + offset) as $t
            }
        }
    )+};
}

sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Random-value source: the subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform value from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let mut next = || self.next_u64();
        T::sample(range, &mut next)
    }
}

/// RNGs constructible from a seed: the subset of `rand::SeedableRng` the
/// workspace uses.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators (`rand::rngs::StdRng`).

    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            assert!(rng.gen_range(0..200u64) < 200);
            let signed = rng.gen_range(-5..5i32);
            assert!((-5..5).contains(&signed));
            let small = rng.gen_range(0..3);
            assert!((0..3).contains(&small));
        }
    }
}
