//! Minimal `parking_lot` API shim backed by `std::sync`.
//!
//! The build environment has no crates.io access, so this in-tree crate
//! provides the exact subset of the `parking_lot` API the workspace uses:
//! [`Mutex`] / [`MutexGuard`] (infallible `lock()`), [`RwLock`], and
//! [`Condvar`] with `wait` / `wait_for`. Lock poisoning is deliberately
//! ignored — like the real `parking_lot`, a panic while holding a lock does
//! not poison it for other threads.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive with an infallible `lock()`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is only ever `None` transiently inside
/// [`Condvar::wait`] / [`Condvar::wait_for`], which need to move the std
/// guard by value.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken by condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken by condvar wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock with infallible `read()` / `write()`.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// `true` if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`] / [`MutexGuard`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified, atomically releasing and re-acquiring the lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard taken by condvar wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or until `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard taken by condvar wait");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut guard = m.lock();
        let res = cv.wait_for(&mut guard, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut done = lock.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        waiter.join().unwrap();
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
