//! Minimal `crossbeam` API shim backed by `std::sync::mpsc`.
//!
//! The build environment has no crates.io access, so this in-tree crate
//! provides the subset of `crossbeam::channel` the workspace uses: unbounded
//! MPSC channels with `send` / `recv` / `try_recv` / `recv_timeout` and the
//! matching error types. Unlike the real crossbeam channel the [`Receiver`](channel::Receiver)
//! here is not `Clone`/`Sync`; the workspace only ever moves each receiver
//! into a single consumer thread.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, SendError};

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders were dropped and the channel is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout elapsed.
        Timeout,
        /// All senders were dropped and the channel is drained.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if every receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks until a message arrives, the timeout elapses, or all senders
        /// are dropped.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn recv_timeout_reports_timeout_and_disconnect() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let sender = std::thread::spawn(move || {
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv().unwrap());
            }
            sender.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }
    }
}
